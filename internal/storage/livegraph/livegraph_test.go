package livegraph

import (
	"testing"
	"time"

	"repro/internal/graph"
)

func TestAddAndScan(t *testing.T) {
	s := NewStore(10)
	if s.BackendName() != "livegraph" {
		t.Fatal("name")
	}
	for i := graph.VID(1); i <= 9; i++ {
		if err := s.AddEdge(0, i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumVertices() != 10 || s.NumEdges() != 9 {
		t.Fatalf("sizes %d %d", s.NumVertices(), s.NumEdges())
	}
	if s.Degree(0, graph.Out) != 9 {
		t.Fatalf("deg out %d", s.Degree(0, graph.Out))
	}
	// Blocks hold 4 entries: 9 edges span 3 blocks, order preserved.
	var ns []graph.VID
	s.Neighbors(0, graph.Out, func(n graph.VID, _ graph.EID) bool {
		ns = append(ns, n)
		return true
	})
	for i, n := range ns {
		if n != graph.VID(i+1) {
			t.Fatalf("order broken: %v", ns)
		}
	}
	if s.Degree(5, graph.In) != 1 || s.Degree(5, graph.Both) != 1 {
		t.Fatal("in degree wrong")
	}
	if s.EdgeWeight(0) != 1.0 {
		t.Fatalf("weight(0) = %v", s.EdgeWeight(0))
	}
	if s.EdgeWeight(4) != 5.0 {
		t.Fatalf("weight(4) = %v", s.EdgeWeight(4))
	}
	if s.EdgeWeight(999) != 1.0 {
		t.Fatal("out-of-range weight should be 1")
	}
}

func TestDelete(t *testing.T) {
	s := NewStore(4)
	_ = s.AddEdge(0, 1, 1)
	_ = s.AddEdge(0, 2, 1)
	_ = s.AddEdge(0, 1, 1) // parallel edge
	if !s.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	if s.Degree(0, graph.Out) != 2 {
		t.Fatalf("degree after delete %d", s.Degree(0, graph.Out))
	}
	// Only the first live copy was removed; the parallel edge survives.
	live := 0
	s.Neighbors(0, graph.Out, func(n graph.VID, _ graph.EID) bool {
		if n == 1 {
			live++
		}
		return true
	})
	if live != 1 {
		t.Fatalf("parallel edge handling wrong: %d", live)
	}
	// In-side invalidated in step.
	if s.Degree(1, graph.In) != 1 {
		t.Fatalf("in degree after delete %d", s.Degree(1, graph.In))
	}
	if s.DeleteEdge(2, 3) {
		t.Fatal("phantom delete succeeded")
	}
	if s.NumEdges() != 2 {
		t.Fatalf("NumEdges after delete %d", s.NumEdges())
	}
}

func TestOutOfRange(t *testing.T) {
	s := NewStore(2)
	if err := s.AddEdge(0, 9, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestEarlyStop(t *testing.T) {
	s := NewStore(3)
	_ = s.AddEdge(0, 1, 1)
	_ = s.AddEdge(0, 2, 1)
	n := 0
	s.Neighbors(0, graph.Out, func(graph.VID, graph.EID) bool { n++; return false })
	if n != 1 {
		t.Fatal("early stop ignored")
	}
	n = 0
	s.Neighbors(0, graph.Both, func(graph.VID, graph.EID) bool { n++; return false })
	if n != 1 {
		t.Fatal("early stop ignored in Both")
	}
}

// TestReentrantYield pins the no-lock-across-yield contract: a Neighbors
// callback that mutates the store (AddEdge takes the write lock, DeleteEdge
// too) must not self-deadlock, and the in-flight scan must still see the
// snapshot it captured. Before walk released s.mu around yield, this test
// hung forever.
func TestReentrantYield(t *testing.T) {
	s := NewStore(8)
	for i := graph.VID(1); i <= 3; i++ {
		if err := s.AddEdge(0, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan []graph.VID, 1)
	go func() {
		var seen []graph.VID
		s.Neighbors(0, graph.Out, func(n graph.VID, _ graph.EID) bool {
			// Re-enter with both lock modes from inside the scan.
			if err := s.AddEdge(n, 7, 1); err != nil {
				t.Error(err)
			}
			s.Degree(n, graph.Out)
			seen = append(seen, n)
			return true
		})
		done <- seen
	}()
	select {
	case seen := <-done:
		if len(seen) != 3 {
			t.Fatalf("scan saw %v, want the 3 snapshot edges", seen)
		}
	case <-timeoutC(t):
		t.Fatal("Neighbors deadlocked on a re-entrant callback")
	}
	// The writes from inside the yield landed.
	for i := graph.VID(1); i <= 3; i++ {
		if s.Degree(i, graph.Out) != 1 {
			t.Fatalf("re-entrant AddEdge(%d,7) lost", i)
		}
	}
}

// TestDeleteDuringYield checks the snapshot semantics of the per-block copy:
// an edge invalidated mid-scan by the callback still finishes the current
// block's snapshot, and a fresh scan no longer sees it.
func TestDeleteDuringYield(t *testing.T) {
	s := NewStore(4)
	for i := graph.VID(1); i <= 3; i++ {
		if err := s.AddEdge(0, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	first := 0
	s.Neighbors(0, graph.Out, func(n graph.VID, _ graph.EID) bool {
		s.DeleteEdge(0, 2) // in the same (only) block: already snapshotted
		first++
		return true
	})
	if first != 3 {
		t.Fatalf("snapshot scan saw %d edges, want 3", first)
	}
	after := 0
	s.Neighbors(0, graph.Out, func(graph.VID, graph.EID) bool { after++; return true })
	if after != 2 {
		t.Fatalf("post-delete scan saw %d edges, want 2", after)
	}
}

// timeoutC returns a channel that fires after a grace period, failing fast
// instead of letting a deadlock eat the package's whole test timeout.
func timeoutC(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(10 * time.Second)
}
