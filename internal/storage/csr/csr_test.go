package csr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/grin"
)

// diamond builds 0->1, 0->2, 1->3, 2->3, 3->0.
func diamond(t *testing.T, opt Options) *Graph {
	t.Helper()
	g, err := Build(4, []Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 2},
		{Src: 1, Dst: 3, Weight: 3},
		{Src: 2, Dst: 3, Weight: 4},
		{Src: 3, Dst: 0, Weight: 5},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := diamond(t, Options{BuildCSC: true, Weighted: true})
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("sizes: %d %d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0, graph.Out) != 2 || g.Degree(3, graph.In) != 2 || g.Degree(0, graph.Both) != 3 {
		t.Fatal("degrees wrong")
	}
	if g.BackendName() != "csr" {
		t.Fatal("backend name")
	}
	if !g.HasCSC() {
		t.Fatal("CSC missing")
	}
}

func TestOutOfRangeEdgeRejected(t *testing.T) {
	if _, err := Build(2, []Edge{{Src: 0, Dst: 5}}, Options{}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestNeighborsAndAdjSlice(t *testing.T) {
	g := diamond(t, Options{BuildCSC: true, Weighted: true})
	out0 := g.AdjSlice(0, graph.Out)
	if len(out0) != 2 {
		t.Fatalf("out(0) len=%d", len(out0))
	}
	// CSR order preserves input order for vertex 0: 1 then 2.
	if out0[0].Nbr != 1 || out0[1].Nbr != 2 {
		t.Fatalf("out(0) = %v", out0)
	}
	// Edge IDs index the weight column.
	if g.EdgeWeight(out0[0].Edge) != 1 || g.EdgeWeight(out0[1].Edge) != 2 {
		t.Fatal("weights not aligned with EIDs")
	}
	in3 := g.AdjSlice(3, graph.In)
	if len(in3) != 2 {
		t.Fatalf("in(3) len=%d", len(in3))
	}
	// In-adjacency references the same EIDs as the out side.
	for _, tgt := range in3 {
		w := g.EdgeWeight(tgt.Edge)
		if w != 3 && w != 4 {
			t.Fatalf("in(3) edge weight %v", w)
		}
	}

	var collected []graph.VID
	g.Neighbors(0, graph.Both, func(n graph.VID, _ graph.EID) bool {
		collected = append(collected, n)
		return true
	})
	if len(collected) != 3 { // out: 1,2; in: 3
		t.Fatalf("Both iteration got %v", collected)
	}

	// Early termination.
	count := 0
	g.Neighbors(0, graph.Out, func(graph.VID, graph.EID) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop ignored, count=%d", count)
	}
}

func TestNoCSCDegrees(t *testing.T) {
	g := diamond(t, Options{})
	if g.Degree(3, graph.In) != 0 || g.AdjSlice(3, graph.In) != nil {
		t.Fatal("in-adjacency should be empty without CSC")
	}
}

func TestSortAdjacencyAndHasEdge(t *testing.T) {
	g, err := Build(3, []Edge{
		{Src: 0, Dst: 2, Weight: 20},
		{Src: 0, Dst: 1, Weight: 10},
	}, Options{SortAdjacency: true, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	adj := g.AdjSlice(0, graph.Out)
	if adj[0].Nbr != 1 || adj[1].Nbr != 2 {
		t.Fatalf("adjacency not sorted: %v", adj)
	}
	// Weights must follow their edges through the sort.
	if g.EdgeWeight(adj[0].Edge) != 10 || g.EdgeWeight(adj[1].Edge) != 20 {
		t.Fatal("weights lost during sort")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestUnweightedDefaultsToOne(t *testing.T) {
	g := diamond(t, Options{})
	if grin.Weight(g, 0) != 1.0 {
		t.Fatal("unweighted EdgeWeight should be 1")
	}
}

func TestScanVerticesPredicate(t *testing.T) {
	g := diamond(t, Options{})
	var got []graph.VID
	g.ScanVertices(graph.AnyLabel, func(v graph.VID) bool { return v%2 == 0 }, func(v graph.VID) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("predicate scan got %v", got)
	}
	// Early stop.
	n := 0
	g.ScanVertices(graph.AnyLabel, nil, func(graph.VID) bool { n++; return false })
	if n != 1 {
		t.Fatal("scan early stop ignored")
	}
}

func TestGRINTraits(t *testing.T) {
	g := diamond(t, Options{Weighted: true})
	for _, tr := range []grin.Trait{grin.TraitTopology, grin.TraitAdjArray, grin.TraitWeight, grin.TraitPredicate} {
		if !grin.Has(g, tr) {
			t.Errorf("csr should provide %v", tr)
		}
	}
	for _, tr := range []grin.Trait{grin.TraitProperty, grin.TraitVersioned, grin.TraitPartition, grin.TraitIndex} {
		if grin.Has(g, tr) {
			t.Errorf("csr should not provide %v", tr)
		}
	}
	if err := grin.Require(g, "test", grin.TraitAdjArray); err != nil {
		t.Fatal(err)
	}
	err := grin.Require(g, "test", grin.TraitProperty)
	if err == nil {
		t.Fatal("Require should fail for missing property trait")
	}
	if mt, ok := err.(*grin.ErrMissingTrait); !ok || mt.Backend != "csr" || mt.Trait != grin.TraitProperty {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestPropertyDegreeSum checks sum(outdeg) == m and that every edge appears
// exactly once in the out adjacency, on random graphs.
func TestPropertyDegreeSum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		m := r.Intn(200)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: graph.VID(r.Intn(n)), Dst: graph.VID(r.Intn(n))}
		}
		g, err := Build(n, edges, Options{BuildCSC: true})
		if err != nil {
			return false
		}
		sumOut, sumIn := 0, 0
		for v := 0; v < n; v++ {
			sumOut += g.Degree(graph.VID(v), graph.Out)
			sumIn += g.Degree(graph.VID(v), graph.In)
		}
		return sumOut == m && sumIn == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCSCMirrorsCSR checks that edge (u,v) in the out adjacency of u
// appears as (v,u) in the in adjacency of v with the same EID.
func TestPropertyCSCMirrorsCSR(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		m := r.Intn(100)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: graph.VID(r.Intn(n)), Dst: graph.VID(r.Intn(n))}
		}
		g, err := Build(n, edges, Options{BuildCSC: true})
		if err != nil {
			return false
		}
		type ek struct {
			u, v graph.VID
			e    graph.EID
		}
		outSet := make(map[ek]bool)
		for u := graph.VID(0); int(u) < n; u++ {
			for _, tgt := range g.AdjSlice(u, graph.Out) {
				outSet[ek{u, tgt.Nbr, tgt.Edge}] = true
			}
		}
		count := 0
		for v := graph.VID(0); int(v) < n; v++ {
			for _, tgt := range g.AdjSlice(v, graph.In) {
				if !outSet[ek{tgt.Nbr, v, tgt.Edge}] {
					return false
				}
				count++
			}
		}
		return count == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachNeighborHelperUsesArrayTrait(t *testing.T) {
	g := diamond(t, Options{})
	var ns []graph.VID
	grin.ForEachNeighbor(g, 0, graph.Out, func(n graph.VID, _ graph.EID) bool {
		ns = append(ns, n)
		return true
	})
	if len(ns) != 2 {
		t.Fatalf("helper iteration got %v", ns)
	}
	got := grin.CollectNeighbors(g, 0, graph.Out)
	if len(got) != 2 || got[0].Nbr != 1 {
		t.Fatalf("CollectNeighbors got %v", got)
	}
}
