package csr

import (
	"repro/internal/graph"
	"repro/internal/grin"
)

var (
	_ grin.BatchAdjacency = (*Graph)(nil)
	_ grin.BatchScan      = (*Graph)(nil)
)

// ExpandBatch implements grin.BatchAdjacency by slicing the offset arrays
// directly: one contiguous copy per frontier vertex per direction, no
// per-edge dispatch.
func (g *Graph) ExpandBatch(frontier []graph.VID, dir graph.Direction, out *grin.AdjBatch) {
	grin.ExpandCSROffsets(frontier, dir, out, g.outOff, g.out, g.inOff, g.in)
}

// ScanBatch implements grin.BatchScan. The simple-graph model has no labels,
// so every label scans the full vertex range — the same behavior as the
// predicate-trait scan.
func (g *Graph) ScanBatch(_ graph.LabelID, start graph.VID, buf []graph.VID) (int, graph.VID) {
	return grin.FillRange(start, graph.VID(g.n), buf)
}
