// Package csr implements a plain static Compressed Sparse Row graph. It is
// both the internal adjacency building block reused by richer stores and the
// immutable upper-bound baseline of Exp-1c (Fig 7c): a dynamic store's scan
// throughput is measured against this.
package csr

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/grin"
)

// Graph is an immutable CSR (+ optional CSC) adjacency with optional edge
// weights. It implements the GRIN topology, array, weight and predicate
// traits; it has no labels or properties (simple/weighted graph model).
type Graph struct {
	n int
	m int

	outOff []uint64
	out    []grin.Target
	inOff  []uint64
	in     []grin.Target // nil unless built with CSC

	weights []float64 // indexed by EID; nil for unweighted
}

var (
	_ grin.Graph         = (*Graph)(nil)
	_ grin.AdjArray      = (*Graph)(nil)
	_ grin.WeightReader  = (*Graph)(nil)
	_ grin.PredicatePush = (*Graph)(nil)
	_ grin.Named         = (*Graph)(nil)
)

// Edge is one input edge for the builder.
type Edge struct {
	Src, Dst graph.VID
	Weight   float64
}

// Options configures Build.
type Options struct {
	// BuildCSC also materializes the in-adjacency. Analytics that pull along
	// in-edges (PageRank pull mode, BFS from destinations) need it.
	BuildCSC bool
	// Weighted stores per-edge weights.
	Weighted bool
	// SortAdjacency orders each adjacency list by neighbor ID, enabling
	// binary-searched edge existence checks.
	SortAdjacency bool
}

// Build constructs a CSR graph over n vertices from an edge list. Edge IDs
// are assigned in out-CSR order: the EID of the k-th slot of the out
// adjacency is k, and the CSC mirrors reference the same IDs.
func Build(n int, edges []Edge, opt Options) (*Graph, error) {
	g := &Graph{n: n, m: len(edges)}
	for i, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("csr: edge %d (%d->%d) out of range n=%d", i, e.Src, e.Dst, n)
		}
	}

	// Counting pass for out-degrees.
	g.outOff = make([]uint64, n+1)
	for _, e := range edges {
		g.outOff[e.Src+1]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	g.out = make([]grin.Target, len(edges))
	if opt.Weighted {
		g.weights = make([]float64, len(edges))
	}
	cursor := make([]uint64, n)
	copy(cursor, g.outOff[:n])
	for _, e := range edges {
		slot := cursor[e.Src]
		cursor[e.Src]++
		g.out[slot] = grin.Target{Nbr: e.Dst, Edge: graph.EID(slot)}
		if opt.Weighted {
			g.weights[slot] = e.Weight
		}
	}
	if opt.SortAdjacency {
		for v := 0; v < n; v++ {
			lo, hi := g.outOff[v], g.outOff[v+1]
			seg := g.out[lo:hi]
			sort.Slice(seg, func(i, j int) bool { return seg[i].Nbr < seg[j].Nbr })
			// Re-key edge IDs and weights to the sorted order so that the
			// EID of slot k stays k (weights move with their edge).
			if opt.Weighted {
				ws := make([]float64, len(seg))
				for i, t := range seg {
					ws[i] = g.weights[t.Edge]
				}
				copy(g.weights[lo:hi], ws)
			}
			for i := range seg {
				seg[i].Edge = graph.EID(lo + uint64(i))
			}
		}
	}

	if opt.BuildCSC {
		g.inOff = make([]uint64, n+1)
		for _, t := range g.out {
			g.inOff[t.Nbr+1]++
		}
		for i := 0; i < n; i++ {
			g.inOff[i+1] += g.inOff[i]
		}
		g.in = make([]grin.Target, len(edges))
		copy(cursor, g.inOff[:n])
		for v := 0; v < n; v++ {
			for _, t := range g.out[g.outOff[v]:g.outOff[v+1]] {
				slot := cursor[t.Nbr]
				cursor[t.Nbr]++
				g.in[slot] = grin.Target{Nbr: graph.VID(v), Edge: t.Edge}
			}
		}
	}
	return g, nil
}

// BackendName implements grin.Named.
func (g *Graph) BackendName() string { return "csr" }

// NumVertices implements grin.Graph.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges implements grin.Graph.
func (g *Graph) NumEdges() int { return g.m }

// Degree implements grin.Graph.
func (g *Graph) Degree(v graph.VID, dir graph.Direction) int {
	switch dir {
	case graph.Out:
		return int(g.outOff[v+1] - g.outOff[v])
	case graph.In:
		if g.in == nil {
			return 0
		}
		return int(g.inOff[v+1] - g.inOff[v])
	default:
		return g.Degree(v, graph.Out) + g.Degree(v, graph.In)
	}
}

// AdjSlice implements grin.AdjArray. For Both it returns only the out
// adjacency; callers needing both directions iterate each separately.
func (g *Graph) AdjSlice(v graph.VID, dir graph.Direction) []grin.Target {
	switch dir {
	case graph.Out:
		return g.out[g.outOff[v]:g.outOff[v+1]]
	case graph.In:
		if g.in == nil {
			return nil
		}
		return g.in[g.inOff[v]:g.inOff[v+1]]
	default:
		return g.out[g.outOff[v]:g.outOff[v+1]]
	}
}

// Neighbors implements grin.Graph.
func (g *Graph) Neighbors(v graph.VID, dir graph.Direction, yield func(graph.VID, graph.EID) bool) {
	if dir == graph.Both {
		g.Neighbors(v, graph.Out, yield)
		g.Neighbors(v, graph.In, yield)
		return
	}
	for _, t := range g.AdjSlice(v, dir) {
		if !yield(t.Nbr, t.Edge) {
			return
		}
	}
}

// EdgeWeight implements grin.WeightReader.
func (g *Graph) EdgeWeight(e graph.EID) float64 {
	if g.weights == nil {
		return 1.0
	}
	return g.weights[e]
}

// HasEdge reports whether (src, dst) exists. O(log d) when built with
// SortAdjacency, O(d) otherwise.
func (g *Graph) HasEdge(src, dst graph.VID) bool {
	adj := g.AdjSlice(src, graph.Out)
	i := sort.Search(len(adj), func(i int) bool { return adj[i].Nbr >= dst })
	if i < len(adj) && adj[i].Nbr == dst {
		return true
	}
	// Fall back to linear scan for unsorted adjacency.
	for _, t := range adj {
		if t.Nbr == dst {
			return true
		}
	}
	return false
}

// ScanVertices implements grin.PredicatePush; simple graphs ignore label.
func (g *Graph) ScanVertices(_ graph.LabelID, pred func(graph.VID) bool, yield func(graph.VID) bool) {
	for v := graph.VID(0); int(v) < g.n; v++ {
		if pred != nil && !pred(v) {
			continue
		}
		if !yield(v) {
			return
		}
	}
}

// HasCSC reports whether the in-adjacency was materialized.
func (g *Graph) HasCSC() bool { return g.in != nil }
