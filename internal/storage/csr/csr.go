// Package csr implements a plain static Compressed Sparse Row graph. It is
// both the internal adjacency building block reused by richer stores and the
// immutable upper-bound baseline of Exp-1c (Fig 7c): a dynamic store's scan
// throughput is measured against this.
package csr

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/parallel"
)

// Graph is an immutable CSR (+ optional CSC) adjacency with optional edge
// weights. It implements the GRIN topology, array, weight and predicate
// traits; it has no labels or properties (simple/weighted graph model).
type Graph struct {
	n int
	m int

	outOff []uint64
	out    []grin.Target
	inOff  []uint64
	in     []grin.Target // nil unless built with CSC

	weights []float64 // indexed by EID; nil for unweighted
	sorted  bool      // adjacency lists ordered by neighbor ID
}

var (
	_ grin.Graph         = (*Graph)(nil)
	_ grin.AdjArray      = (*Graph)(nil)
	_ grin.WeightReader  = (*Graph)(nil)
	_ grin.PredicatePush = (*Graph)(nil)
	_ grin.Named         = (*Graph)(nil)
)

// Edge is one input edge for the builder.
type Edge struct {
	Src, Dst graph.VID
	Weight   float64
}

// Options configures Build.
type Options struct {
	// BuildCSC also materializes the in-adjacency. Analytics that pull along
	// in-edges (PageRank pull mode, BFS from destinations) need it.
	BuildCSC bool
	// Weighted stores per-edge weights.
	Weighted bool
	// SortAdjacency orders each adjacency list by neighbor ID, enabling
	// binary-searched edge existence checks.
	SortAdjacency bool
	// Workers bounds Build's parallelism: 0 selects GOMAXPROCS, 1 forces the
	// sequential path. The resulting layout is identical for every worker
	// count (parallel counting sort preserves input edge order per vertex).
	Workers int
}

// buildAdj is one parallel counting-sort pass: it groups m items keyed by
// key(i) into per-vertex segments, returning the n+1 offset array and calling
// place(i, slot) once per item with its destination slot. Items keep their
// input order within each vertex segment — each worker owns a contiguous item
// chunk and chunk-relative cursors are pre-offset by the items earlier chunks
// contribute, so the layout is identical to a sequential stable pass.
func buildAdj(n, m, workers int, key func(i int) graph.VID, place func(i int, slot uint64)) []uint64 {
	if m == 0 {
		return make([]uint64, n+1)
	}
	counts := make([][]uint32, parallel.Workers(workers, m))
	parallel.For(m, workers, func(w, lo, hi int) {
		c := make([]uint32, n)
		for i := lo; i < hi; i++ {
			c[key(i)]++
		}
		counts[w] = c
	})
	// Per vertex: rewrite chunk counts into chunk-relative start cursors and
	// collect the total degree.
	off := make([]uint64, n+1)
	parallel.For(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			var run uint32
			for w := range counts {
				cw := counts[w][v]
				counts[w][v] = run
				run += cw
			}
			off[v+1] = uint64(run)
		}
	})
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	parallel.For(m, workers, func(w, lo, hi int) {
		c := counts[w]
		for i := lo; i < hi; i++ {
			v := key(i)
			slot := off[v] + uint64(c[v])
			c[v]++
			place(i, slot)
		}
	})
	return off
}

// Build constructs a CSR graph over n vertices from an edge list. Edge IDs
// are assigned in out-CSR order: the EID of the k-th slot of the out
// adjacency is k, and the CSC mirrors reference the same IDs. Construction
// runs on opt.Workers workers (degree counting, placement, per-vertex sorts
// and the CSC pass are all parallel) and produces the same graph at every
// worker count.
func Build(n int, edges []Edge, opt Options) (*Graph, error) {
	g := &Graph{n: n, m: len(edges), sorted: opt.SortAdjacency}
	m := len(edges)

	// Validation: each worker reports the first bad edge of its chunk; the
	// merge keeps the lowest index so the error matches a sequential scan.
	bad := parallel.Reduce(m, opt.Workers, -1, func(_, lo, hi, acc int) int {
		for i := lo; i < hi; i++ {
			if int(edges[i].Src) >= n || int(edges[i].Dst) >= n {
				return i
			}
		}
		return acc
	}, func(a, b int) int {
		switch {
		case a == -1:
			return b
		case b == -1 || a < b:
			return a
		default:
			return b
		}
	})
	if bad >= 0 {
		e := edges[bad]
		return nil, fmt.Errorf("csr: edge %d (%d->%d) out of range n=%d", bad, e.Src, e.Dst, n)
	}

	g.out = make([]grin.Target, m)
	if opt.Weighted {
		g.weights = make([]float64, m)
	}
	g.outOff = buildAdj(n, m, opt.Workers, func(i int) graph.VID { return edges[i].Src },
		func(i int, slot uint64) {
			g.out[slot] = grin.Target{Nbr: edges[i].Dst, Edge: graph.EID(slot)}
			if opt.Weighted {
				g.weights[slot] = edges[i].Weight
			}
		})

	if opt.SortAdjacency {
		// Per-vertex segments are disjoint; dynamic chunking rides out the
		// degree skew of power-law graphs.
		parallel.ForDynamic(n, opt.Workers, 0, func(_, vlo, vhi int) {
			for v := vlo; v < vhi; v++ {
				lo, hi := g.outOff[v], g.outOff[v+1]
				seg := g.out[lo:hi]
				sort.Slice(seg, func(i, j int) bool { return seg[i].Nbr < seg[j].Nbr })
				// Re-key edge IDs and weights to the sorted order so that the
				// EID of slot k stays k (weights move with their edge).
				if opt.Weighted {
					ws := make([]float64, len(seg))
					for i, t := range seg {
						ws[i] = g.weights[t.Edge]
					}
					copy(g.weights[lo:hi], ws)
				}
				for i := range seg {
					seg[i].Edge = graph.EID(lo + uint64(i))
				}
			}
		})
	}

	if opt.BuildCSC {
		// Source vertex of every out slot, for the slot-chunked CSC pass.
		srcOf := make([]graph.VID, m)
		parallel.For(n, opt.Workers, func(_, vlo, vhi int) {
			for v := vlo; v < vhi; v++ {
				for s := g.outOff[v]; s < g.outOff[v+1]; s++ {
					srcOf[s] = graph.VID(v)
				}
			}
		})
		g.in = make([]grin.Target, m)
		g.inOff = buildAdj(n, m, opt.Workers, func(i int) graph.VID { return g.out[i].Nbr },
			func(i int, slot uint64) {
				g.in[slot] = grin.Target{Nbr: srcOf[i], Edge: g.out[i].Edge}
			})
	}
	return g, nil
}

// BackendName implements grin.Named.
func (g *Graph) BackendName() string { return "csr" }

// NumVertices implements grin.Graph.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges implements grin.Graph.
func (g *Graph) NumEdges() int { return g.m }

// Degree implements grin.Graph.
func (g *Graph) Degree(v graph.VID, dir graph.Direction) int {
	switch dir {
	case graph.Out:
		return int(g.outOff[v+1] - g.outOff[v])
	case graph.In:
		if g.in == nil {
			return 0
		}
		return int(g.inOff[v+1] - g.inOff[v])
	default:
		return g.Degree(v, graph.Out) + g.Degree(v, graph.In)
	}
}

// AdjSlice implements grin.AdjArray. For Both it returns only the out
// adjacency; callers needing both directions iterate each separately.
func (g *Graph) AdjSlice(v graph.VID, dir graph.Direction) []grin.Target {
	switch dir {
	case graph.Out:
		return g.out[g.outOff[v]:g.outOff[v+1]]
	case graph.In:
		if g.in == nil {
			return nil
		}
		return g.in[g.inOff[v]:g.inOff[v+1]]
	default:
		return g.out[g.outOff[v]:g.outOff[v+1]]
	}
}

// Neighbors implements grin.Graph.
func (g *Graph) Neighbors(v graph.VID, dir graph.Direction, yield func(graph.VID, graph.EID) bool) {
	if dir == graph.Both {
		g.Neighbors(v, graph.Out, yield)
		g.Neighbors(v, graph.In, yield)
		return
	}
	for _, t := range g.AdjSlice(v, dir) {
		if !yield(t.Nbr, t.Edge) {
			return
		}
	}
}

// EdgeWeight implements grin.WeightReader.
func (g *Graph) EdgeWeight(e graph.EID) float64 {
	if g.weights == nil {
		return 1.0
	}
	return g.weights[e]
}

// HasEdge reports whether (src, dst) exists. O(log d) when built with
// SortAdjacency, O(d) otherwise.
func (g *Graph) HasEdge(src, dst graph.VID) bool {
	adj := g.AdjSlice(src, graph.Out)
	if g.sorted {
		i := sort.Search(len(adj), func(i int) bool { return adj[i].Nbr >= dst })
		return i < len(adj) && adj[i].Nbr == dst
	}
	for _, t := range adj {
		if t.Nbr == dst {
			return true
		}
	}
	return false
}

// Sorted reports whether adjacency lists are ordered by neighbor ID (the
// SortAdjacency build option).
func (g *Graph) Sorted() bool { return g.sorted }

// ScanVertices implements grin.PredicatePush; simple graphs ignore label.
func (g *Graph) ScanVertices(_ graph.LabelID, pred func(graph.VID) bool, yield func(graph.VID) bool) {
	for v := graph.VID(0); int(v) < g.n; v++ {
		if pred != nil && !pred(v) {
			continue
		}
		if !yield(v) {
			return
		}
	}
}

// HasCSC reports whether the in-adjacency was materialized.
func (g *Graph) HasCSC() bool { return g.in != nil }
