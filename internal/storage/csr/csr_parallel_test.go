package csr

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// randomEdges builds a skewed random edge list (quadratic src bias, so some
// vertices are hubs like in the power-law datasets).
func randomEdges(n, m int, seed int64) []Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		s := r.Intn(n)
		if r.Intn(4) == 0 {
			s = int(float64(n) * r.Float64() * r.Float64()) // hubbier
		}
		edges[i] = Edge{Src: graph.VID(s), Dst: graph.VID(r.Intn(n)), Weight: r.Float64()}
	}
	return edges
}

// TestParallelBuildMatchesSequential: every worker count must produce a graph
// bit-identical to the sequential build, for every option combination.
func TestParallelBuildMatchesSequential(t *testing.T) {
	const n, m = 500, 4000
	edges := randomEdges(n, m, 7)
	for _, opt := range []Options{
		{},
		{BuildCSC: true},
		{Weighted: true},
		{SortAdjacency: true, Weighted: true},
		{BuildCSC: true, SortAdjacency: true, Weighted: true},
	} {
		seqOpt := opt
		seqOpt.Workers = 1
		want, err := Build(n, edges, seqOpt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 8} {
			parOpt := opt
			parOpt.Workers = workers
			got, err := Build(n, edges, parOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.outOff, got.outOff) || !reflect.DeepEqual(want.out, got.out) {
				t.Fatalf("opt=%+v workers=%d: out-CSR differs from sequential", opt, workers)
			}
			if !reflect.DeepEqual(want.inOff, got.inOff) || !reflect.DeepEqual(want.in, got.in) {
				t.Fatalf("opt=%+v workers=%d: CSC differs from sequential", opt, workers)
			}
			if !reflect.DeepEqual(want.weights, got.weights) {
				t.Fatalf("opt=%+v workers=%d: weights differ from sequential", opt, workers)
			}
		}
	}
}

// TestParallelBuildEdgeCases: empty graphs, empty edge lists, and more
// workers than edges must all work.
func TestParallelBuildEdgeCases(t *testing.T) {
	if g, err := Build(3, nil, Options{BuildCSC: true, Workers: 8}); err != nil || g.NumEdges() != 0 {
		t.Fatalf("empty edge list: %v %v", g, err)
	}
	if g, err := Build(0, nil, Options{Workers: 4}); err != nil || g.NumVertices() != 0 {
		t.Fatalf("empty graph: %v %v", g, err)
	}
	if g, err := Build(10, []Edge{{Src: 1, Dst: 2}}, Options{Workers: 16, BuildCSC: true, SortAdjacency: true}); err != nil || g.NumEdges() != 1 {
		t.Fatalf("one edge, many workers: %v %v", g, err)
	}
}

// TestParallelBuildReportsFirstBadEdge: the error must name the lowest bad
// edge index, as a sequential scan would.
func TestParallelBuildReportsFirstBadEdge(t *testing.T) {
	edges := randomEdges(50, 1000, 9)
	edges[700].Dst = 99 // bad, later
	edges[123].Src = 77 // bad, first
	_, err := Build(50, edges, Options{Workers: 8})
	if err == nil {
		t.Fatal("bad edge accepted")
	}
	want := "csr: edge 123 (77->"
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("error %q does not report first bad edge", got)
	}
}

// TestHasEdgeUnsorted: without SortAdjacency, HasEdge must still be correct
// (linear scan, no binary search over an unsorted list).
func TestHasEdgeUnsorted(t *testing.T) {
	// Deliberately descending adjacency: binary search on it would miss.
	g, err := Build(5, []Edge{
		{Src: 0, Dst: 4},
		{Src: 0, Dst: 2},
		{Src: 0, Dst: 1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Sorted() {
		t.Fatal("graph should not report sorted adjacency")
	}
	for _, dst := range []graph.VID{1, 2, 4} {
		if !g.HasEdge(0, dst) {
			t.Fatalf("HasEdge(0,%d) = false on unsorted adjacency", dst)
		}
	}
	if g.HasEdge(0, 3) || g.HasEdge(0, 0) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge reported a nonexistent edge")
	}

	gs, err := Build(5, []Edge{
		{Src: 0, Dst: 4},
		{Src: 0, Dst: 2},
		{Src: 0, Dst: 1},
	}, Options{SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	if !gs.Sorted() {
		t.Fatal("graph should report sorted adjacency")
	}
	for _, dst := range []graph.VID{1, 2, 4} {
		if !gs.HasEdge(0, dst) {
			t.Fatalf("HasEdge(0,%d) = false on sorted adjacency", dst)
		}
	}
	if gs.HasEdge(0, 3) {
		t.Fatal("sorted HasEdge reported a nonexistent edge")
	}
}

// BenchmarkBuild measures the full Build (CSC + sorted adjacency + weights)
// at workers=1 vs workers=NumCPU; the acceptance gate for the parallel
// runtime on the storage path.
func BenchmarkBuild(b *testing.B) {
	const n, m = 100_000, 800_000
	edges := randomEdges(n, m, 11)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := Options{BuildCSC: true, SortAdjacency: true, Weighted: true, Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(n, edges, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
