package graphar

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/graph"
)

// WriteCSV persists a batch as one CSV file per label — the baseline data
// layout of Exp-1d (Fig 7d), which GraphAr's chunked binary format is
// measured against.
func WriteCSV(dir string, b *graph.Batch) error {
	s := b.Schema
	if s == nil {
		return fmt.Errorf("graphar: batch has no schema")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for l := 0; l < s.NumVertexLabels(); l++ {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("v_%d.csv", l)))
		if err != nil {
			return err
		}
		w := csv.NewWriter(bufio.NewWriter(f))
		header := []string{"ext"}
		for _, p := range s.Vertices[l].Props {
			header = append(header, p.Name)
		}
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		for _, v := range b.Vertices {
			if v.Label != graph.LabelID(l) {
				continue
			}
			rec := []string{strconv.FormatInt(v.ExtID, 10)}
			for _, p := range v.Props {
				rec = append(rec, csvField(p))
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for l := 0; l < s.NumEdgeLabels(); l++ {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("e_%d.csv", l)))
		if err != nil {
			return err
		}
		w := csv.NewWriter(bufio.NewWriter(f))
		header := []string{"src", "dst"}
		for _, p := range s.Edges[l].Props {
			header = append(header, p.Name)
		}
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		for _, e := range b.Edges {
			if e.Label != graph.LabelID(l) {
				continue
			}
			rec := []string{strconv.FormatInt(e.Src, 10), strconv.FormatInt(e.Dst, 10)}
			for _, p := range e.Props {
				rec = append(rec, csvField(p))
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func csvField(v graph.Value) string {
	if v.IsNull() {
		return ""
	}
	switch v.K {
	case graph.KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case graph.KindBool:
		return strconv.FormatBool(v.I != 0)
	case graph.KindInt:
		return strconv.FormatInt(v.I, 10)
	}
	return v.S
}

// LoadCSV parses CSV files written by WriteCSV back into a batch. It is
// single-pass text parsing: the per-field strconv work and row-at-a-time
// layout are exactly the loading overhead the archive format eliminates.
func LoadCSV(dir string, s *graph.Schema) (*graph.Batch, error) {
	b := graph.NewBatch(s)
	for l := 0; l < s.NumVertexLabels(); l++ {
		recs, err := readCSV(filepath.Join(dir, fmt.Sprintf("v_%d.csv", l)))
		if err != nil {
			return nil, err
		}
		defs := s.Vertices[l].Props
		for i, rec := range recs {
			if len(rec) != 1+len(defs) {
				return nil, fmt.Errorf("graphar: v_%d.csv row %d: %d fields, want %d", l, i, len(rec), 1+len(defs))
			}
			ext, err := strconv.ParseInt(rec[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graphar: v_%d.csv row %d: %w", l, i, err)
			}
			props, err := parseProps(rec[1:], defs)
			if err != nil {
				return nil, fmt.Errorf("graphar: v_%d.csv row %d: %w", l, i, err)
			}
			b.Vertices = append(b.Vertices, graph.VertexRecord{Label: graph.LabelID(l), ExtID: ext, Props: props})
		}
	}
	for l := 0; l < s.NumEdgeLabels(); l++ {
		recs, err := readCSV(filepath.Join(dir, fmt.Sprintf("e_%d.csv", l)))
		if err != nil {
			return nil, err
		}
		defs := s.Edges[l].Props
		for i, rec := range recs {
			if len(rec) != 2+len(defs) {
				return nil, fmt.Errorf("graphar: e_%d.csv row %d: %d fields, want %d", l, i, len(rec), 2+len(defs))
			}
			src, err := strconv.ParseInt(rec[0], 10, 64)
			if err != nil {
				return nil, err
			}
			dst, err := strconv.ParseInt(rec[1], 10, 64)
			if err != nil {
				return nil, err
			}
			props, err := parseProps(rec[2:], defs)
			if err != nil {
				return nil, fmt.Errorf("graphar: e_%d.csv row %d: %w", l, i, err)
			}
			b.Edges = append(b.Edges, graph.EdgeRecord{Label: graph.LabelID(l), Src: src, Dst: dst, Props: props})
		}
	}
	return b, nil
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	recs, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("graphar: %s: missing header", path)
	}
	return recs[1:], nil
}

func parseProps(fields []string, defs []graph.PropDef) ([]graph.Value, error) {
	if len(defs) == 0 {
		return nil, nil
	}
	props := make([]graph.Value, len(defs))
	for i, f := range fields {
		if f == "" {
			props[i] = graph.NullValue
			continue
		}
		switch defs[i].Kind {
		case graph.KindInt:
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, err
			}
			props[i] = graph.IntValue(n)
		case graph.KindFloat:
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, err
			}
			props[i] = graph.FloatValue(x)
		case graph.KindBool:
			bv, err := strconv.ParseBool(f)
			if err != nil {
				return nil, err
			}
			props[i] = graph.BoolValue(bv)
		default:
			props[i] = graph.StringValue(f)
		}
	}
	return props, nil
}
