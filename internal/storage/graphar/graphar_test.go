package graphar

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/grin"
)

func arSchema() *graph.Schema {
	return graph.NewSchema(
		[]graph.VertexLabel{
			{Name: "Person", Props: []graph.PropDef{
				{Name: "name", Kind: graph.KindString},
				{Name: "age", Kind: graph.KindInt},
				{Name: "active", Kind: graph.KindBool},
			}},
			{Name: "Post", Props: []graph.PropDef{{Name: "score", Kind: graph.KindFloat}}},
		},
		[]graph.EdgeLabel{
			{Name: "Knows", Src: 0, Dst: 0, Props: []graph.PropDef{{Name: "weight", Kind: graph.KindFloat}}},
			{Name: "Likes", Src: 0, Dst: 1},
		},
	)
}

// arBatch builds a deterministic random batch over the test schema.
func arBatch(nPersons, nPosts, nKnows, nLikes int, seed int64) *graph.Batch {
	r := rand.New(rand.NewSource(seed))
	s := arSchema()
	b := graph.NewBatch(s)
	for i := 0; i < nPersons; i++ {
		name := graph.StringValue("p" + string(rune('a'+i%26)))
		age := graph.IntValue(int64(20 + r.Intn(50)))
		if i%7 == 0 {
			age = graph.NullValue // exercise null bitmaps
		}
		b.AddVertex(0, int64(i*2), name, age, graph.BoolValue(i%2 == 0))
	}
	for i := 0; i < nPosts; i++ {
		b.AddVertex(1, int64(i), graph.FloatValue(r.Float64()*10))
	}
	for i := 0; i < nKnows; i++ {
		b.AddEdge(0, int64(r.Intn(nPersons)*2), int64(r.Intn(nPersons)*2), graph.FloatValue(r.Float64()))
	}
	for i := 0; i < nLikes; i++ {
		b.AddEdge(1, int64(r.Intn(nPersons)*2), int64(r.Intn(nPosts)))
	}
	return b
}

// canon produces an order-independent canonical form of a batch.
func canon(b *graph.Batch) ([]graph.VertexRecord, []graph.EdgeRecord) {
	vs := append([]graph.VertexRecord(nil), b.Vertices...)
	es := append([]graph.EdgeRecord(nil), b.Edges...)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Label != vs[j].Label {
			return vs[i].Label < vs[j].Label
		}
		return vs[i].ExtID < vs[j].ExtID
	})
	sort.Slice(es, func(i, j int) bool {
		if es[i].Label != es[j].Label {
			return es[i].Label < es[j].Label
		}
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		if es[i].Dst != es[j].Dst {
			return es[i].Dst < es[j].Dst
		}
		// Parallel edges: order by first prop for determinism.
		if len(es[i].Props) > 0 {
			return es[i].Props[0].Compare(es[j].Props[0]) < 0
		}
		return false
	})
	return vs, es
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := arBatch(40, 15, 120, 60, 7)
	if err := Write(dir, b, Options{ChunkSize: 16}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBatch(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantE := canon(b)
	gotV, gotE := canon(got)
	if !reflect.DeepEqual(wantV, gotV) {
		t.Fatalf("vertices differ:\nwant %v\ngot  %v", wantV[:3], gotV[:3])
	}
	if !reflect.DeepEqual(wantE, gotE) {
		t.Fatal("edges differ after round trip")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("loaded batch invalid: %v", err)
	}
}

func TestMetaErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("missing meta accepted")
	}
	os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{bad"), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("corrupt meta accepted")
	}
	os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"format_version":9,"chunk_size":8}`), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("wrong version accepted")
	}
	os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"format_version":1,"chunk_size":0}`), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

func TestCorruptColumnFile(t *testing.T) {
	dir := t.TempDir()
	b := arBatch(10, 5, 20, 10, 1)
	if err := Write(dir, b, Options{ChunkSize: 4}); err != nil {
		t.Fatal(err)
	}
	// Truncate one column file: load must fail, not crash.
	path := filepath.Join(dir, vertexExtFile(0))
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/2], 0o644)
	if _, err := LoadBatch(dir, 2); err == nil {
		t.Fatal("truncated column accepted")
	}
	// Bad magic.
	os.WriteFile(path, []byte("XXXX???"), 0o644)
	if _, err := LoadBatch(dir, 2); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := arBatch(25, 10, 60, 30, 3)
	if err := WriteCSV(dir, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(dir, arSchema())
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantE := canon(b)
	gotV, gotE := canon(got)
	if !reflect.DeepEqual(wantV, gotV) {
		t.Fatal("CSV vertices differ")
	}
	if !reflect.DeepEqual(wantE, gotE) {
		t.Fatal("CSV edges differ")
	}
}

func openStore(t *testing.T, b *graph.Batch, chunk int) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := Write(dir, b, Options{ChunkSize: chunk}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStoreBasics(t *testing.T) {
	b := arBatch(30, 10, 80, 40, 11)
	st := openStore(t, b, 8)
	if st.BackendName() != "graphar" {
		t.Fatal("name")
	}
	if st.NumVertices() != 40 || st.NumEdges() != 120 {
		t.Fatalf("sizes %d %d", st.NumVertices(), st.NumEdges())
	}
	lo, hi, ok := st.LabelRange(0)
	if !ok || lo != 0 || hi != 30 {
		t.Fatalf("person range [%d,%d)", lo, hi)
	}
	lo, hi, _ = st.LabelRange(1)
	if lo != 30 || hi != 40 {
		t.Fatalf("post range [%d,%d)", lo, hi)
	}
	// Lookup + ExternalID round trip for every person.
	for i := 0; i < 30; i++ {
		ext := int64(i * 2)
		v, ok := st.LookupVertex(0, ext)
		if !ok {
			t.Fatalf("person %d missing", ext)
		}
		if st.ExternalID(v) != ext {
			t.Fatalf("ext mismatch for %d", ext)
		}
		if st.VertexLabel(v) != 0 {
			t.Fatal("label mismatch")
		}
	}
	if _, ok := st.LookupVertex(0, 999); ok {
		t.Fatal("phantom lookup")
	}
	if _, ok := st.LookupVertex(0, 1); ok { // odd ids don't exist
		t.Fatal("phantom odd lookup")
	}
}

// TestStoreMatchesVineyardSemantics cross-checks lazy disk reads against the
// in-memory reference: same batch, same adjacency and properties.
func TestStoreMatchesBatch(t *testing.T) {
	b := arBatch(20, 8, 60, 30, 13)
	st := openStore(t, b, 4)

	// Reference adjacency from the raw batch (external IDs).
	outRef := map[int64][]int64{} // person ext -> sorted knows-dst ext
	inRef := map[int64][]int64{}
	for _, e := range b.Edges {
		if e.Label != 0 {
			continue
		}
		outRef[e.Src] = append(outRef[e.Src], e.Dst)
		inRef[e.Dst] = append(inRef[e.Dst], e.Src)
	}
	for i := 0; i < 20; i++ {
		ext := int64(i * 2)
		v, _ := st.LookupVertex(0, ext)
		var gotOut, gotIn []int64
		st.Neighbors(v, graph.Out, func(n graph.VID, e graph.EID) bool {
			if st.EdgeLabel(e) == 0 {
				gotOut = append(gotOut, st.ExternalID(n))
			}
			return true
		})
		st.Neighbors(v, graph.In, func(n graph.VID, e graph.EID) bool {
			if st.EdgeLabel(e) == 0 {
				gotIn = append(gotIn, st.ExternalID(n))
			}
			return true
		})
		sort.Slice(gotOut, func(a, b int) bool { return gotOut[a] < gotOut[b] })
		sort.Slice(gotIn, func(a, b int) bool { return gotIn[a] < gotIn[b] })
		wantOut := append([]int64(nil), outRef[ext]...)
		wantIn := append([]int64(nil), inRef[ext]...)
		sort.Slice(wantOut, func(a, b int) bool { return wantOut[a] < wantOut[b] })
		sort.Slice(wantIn, func(a, b int) bool { return wantIn[a] < wantIn[b] })
		if !reflect.DeepEqual(gotOut, wantOut) {
			t.Fatalf("out(%d): got %v want %v", ext, gotOut, wantOut)
		}
		if !reflect.DeepEqual(gotIn, wantIn) {
			t.Fatalf("in(%d): got %v want %v", ext, gotIn, wantIn)
		}
	}
}

func TestStorePropsAndWeights(t *testing.T) {
	b := arBatch(20, 8, 60, 30, 17)
	st := openStore(t, b, 4)

	// Vertex props, including nulls (every 7th person's age is null).
	for i := 0; i < 20; i++ {
		v, _ := st.LookupVertex(0, int64(i*2))
		age, ok := st.VertexProp(v, 1)
		if i%7 == 0 {
			if ok {
				t.Fatalf("person %d: null age resolved to %v", i, age)
			}
		} else if !ok || age.K != graph.KindInt {
			t.Fatalf("person %d: age missing", i)
		}
		if active, ok := st.VertexProp(v, 2); !ok || active.Bool() != (i%2 == 0) {
			t.Fatalf("person %d: active wrong", i)
		}
	}

	// Edge weights round-trip through the weight trait: in-edge EIDs must
	// reference the same forward rows, so weights agree across directions.
	seen := map[graph.EID]float64{}
	for i := 0; i < 20; i++ {
		v, _ := st.LookupVertex(0, int64(i*2))
		st.Neighbors(v, graph.Out, func(_ graph.VID, e graph.EID) bool {
			if st.EdgeLabel(e) == 0 {
				seen[e] = st.EdgeWeight(e)
			}
			return true
		})
	}
	checked := 0
	for i := 0; i < 20; i++ {
		v, _ := st.LookupVertex(0, int64(i*2))
		st.Neighbors(v, graph.In, func(_ graph.VID, e graph.EID) bool {
			if w, ok := seen[e]; ok {
				if st.EdgeWeight(e) != w {
					t.Fatalf("weight mismatch across directions for eid %d", e)
				}
				checked++
			}
			return true
		})
	}
	if checked == 0 {
		t.Fatal("no cross-direction edges checked")
	}
	// Unweighted label (Likes) defaults to 1.
	for e := graph.EID(60); e < 90; e++ {
		if st.EdgeLabel(e) != 1 {
			continue
		}
		if st.EdgeWeight(e) != 1.0 {
			t.Fatal("Likes weight should be 1")
		}
	}
}

func TestStoreTraits(t *testing.T) {
	b := arBatch(5, 2, 6, 3, 19)
	st := openStore(t, b, 4)
	for _, tr := range []grin.Trait{grin.TraitTopology, grin.TraitProperty, grin.TraitWeight, grin.TraitIndex, grin.TraitPredicate} {
		if !grin.Has(st, tr) {
			t.Errorf("graphar should provide %v", tr)
		}
	}
	// No zero-copy arrays from disk.
	if grin.Has(st, grin.TraitAdjArray) {
		t.Error("graphar should not claim the array trait")
	}
}

func TestStoreScanVertices(t *testing.T) {
	b := arBatch(10, 4, 12, 6, 23)
	st := openStore(t, b, 4)
	n := 0
	st.ScanVertices(1, nil, func(v graph.VID) bool {
		if st.VertexLabel(v) != 1 {
			t.Fatal("wrong label in scan")
		}
		n++
		return true
	})
	if n != 4 {
		t.Fatalf("post scan %d", n)
	}
}
