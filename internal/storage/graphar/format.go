// Package graphar implements the Graph Archive storage backend of §4.2: a
// standardized chunked columnar file format for graph data at rest. Like the
// paper's GraphAr (built on ORC/Parquet), it
//
//   - partitions every column into fixed-size chunks with an offset index,
//     so readers fetch only relevant chunks, in parallel;
//   - applies lightweight encodings (zigzag-varint deltas for integers,
//     dictionary-free length-prefixed strings, raw little-endian floats);
//   - keeps per-chunk first-key statistics on sorted columns, enabling
//     storage-level operations (vertex lookup by external ID, neighbor
//     retrieval) without loading the whole graph;
//   - can serve as a GRIN data source directly (see Store), trading latency
//     for footprint — the slowest backend of Fig 7(a), by design.
package graphar

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// DefaultChunkSize is the number of rows per chunk.
const DefaultChunkSize = 1024

const colMagic = "GARC"

// Meta is the archive manifest persisted as meta.json.
type Meta struct {
	FormatVersion int         `json:"format_version"`
	ChunkSize     int         `json:"chunk_size"`
	VertexLabels  []LabelMeta `json:"vertex_labels"`
	EdgeLabels    []EdgeMeta  `json:"edge_labels"`
}

// LabelMeta describes one vertex label's persisted columns.
type LabelMeta struct {
	Name  string     `json:"name"`
	Count int        `json:"count"`
	Props []PropMeta `json:"props"`
}

// EdgeMeta describes one edge label's persisted columns.
type EdgeMeta struct {
	Name  string     `json:"name"`
	Src   string     `json:"src"`
	Dst   string     `json:"dst"`
	Count int        `json:"count"`
	Props []PropMeta `json:"props"`
}

// PropMeta is one property definition in the manifest.
type PropMeta struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func kindName(k graph.Kind) string {
	switch k {
	case graph.KindBool:
		return "bool"
	case graph.KindInt:
		return "int"
	case graph.KindFloat:
		return "float"
	case graph.KindString:
		return "string"
	}
	return "unsupported"
}

func kindFromName(s string) (graph.Kind, error) {
	switch s {
	case "bool":
		return graph.KindBool, nil
	case "int":
		return graph.KindInt, nil
	case "float":
		return graph.KindFloat, nil
	case "string":
		return graph.KindString, nil
	}
	return graph.KindNil, fmt.Errorf("graphar: unknown kind %q", s)
}

// SchemaOf reconstructs the graph schema from a manifest.
func (m *Meta) SchemaOf() (*graph.Schema, error) {
	vls := make([]graph.VertexLabel, len(m.VertexLabels))
	nameToID := map[string]graph.LabelID{}
	for i, vl := range m.VertexLabels {
		props, err := propDefs(vl.Props)
		if err != nil {
			return nil, err
		}
		vls[i] = graph.VertexLabel{Name: vl.Name, Props: props}
		nameToID[vl.Name] = graph.LabelID(i)
	}
	els := make([]graph.EdgeLabel, len(m.EdgeLabels))
	for i, el := range m.EdgeLabels {
		props, err := propDefs(el.Props)
		if err != nil {
			return nil, err
		}
		src, ok := nameToID[el.Src]
		if !ok {
			return nil, fmt.Errorf("graphar: edge label %s references unknown vertex label %s", el.Name, el.Src)
		}
		dst, ok := nameToID[el.Dst]
		if !ok {
			return nil, fmt.Errorf("graphar: edge label %s references unknown vertex label %s", el.Name, el.Dst)
		}
		els[i] = graph.EdgeLabel{Name: el.Name, Src: src, Dst: dst, Props: props}
	}
	return graph.NewSchema(vls, els), nil
}

func propDefs(ps []PropMeta) ([]graph.PropDef, error) {
	defs := make([]graph.PropDef, len(ps))
	for i, p := range ps {
		k, err := kindFromName(p.Kind)
		if err != nil {
			return nil, err
		}
		defs[i] = graph.PropDef{Name: p.Name, Kind: k}
	}
	return defs, nil
}

func writeMeta(dir string, m *Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), data, 0o644)
}

// ReadMeta loads and validates the manifest of an archive directory.
func ReadMeta(dir string) (*Meta, error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("graphar: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("graphar: corrupt meta.json: %w", err)
	}
	if m.FormatVersion != 1 {
		return nil, fmt.Errorf("graphar: unsupported format version %d", m.FormatVersion)
	}
	if m.ChunkSize <= 0 {
		return nil, fmt.Errorf("graphar: invalid chunk size %d", m.ChunkSize)
	}
	return &m, nil
}

// ---- column file format ----
//
//   magic "GARC" | u8 kind | uvarint totalRows | uvarint chunkSize |
//   uvarint numChunks | numChunks × (uvarint byteLen, varint firstKey) |
//   chunk payloads…
//
// firstKey is the chunk's first integer value for int columns (chunk-skip
// statistics on sorted columns); 0 for other kinds.

type colFile struct {
	kind      graph.Kind
	totalRows int
	chunkSize int
	offsets   []int64 // byte offset of each chunk payload within data
	lengths   []int
	firstKeys []int64
	data      []byte // whole payload region
}

func encodeColumn(kind graph.Kind, rows int, chunkSize int, encodeChunk func(lo, hi int, buf []byte) []byte, firstKey func(lo int) int64) []byte {
	numChunks := (rows + chunkSize - 1) / chunkSize
	header := make([]byte, 0, 64+numChunks*6)
	header = append(header, colMagic...)
	header = append(header, byte(kind))
	header = binary.AppendUvarint(header, uint64(rows))
	header = binary.AppendUvarint(header, uint64(chunkSize))
	header = binary.AppendUvarint(header, uint64(numChunks))
	payloads := make([][]byte, numChunks)
	for c := 0; c < numChunks; c++ {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > rows {
			hi = rows
		}
		payloads[c] = encodeChunk(lo, hi, nil)
	}
	for c := 0; c < numChunks; c++ {
		header = binary.AppendUvarint(header, uint64(len(payloads[c])))
		var fk int64
		if firstKey != nil {
			fk = firstKey(c * chunkSize)
		}
		header = binary.AppendVarint(header, fk)
	}
	out := header
	for _, p := range payloads {
		out = append(out, p...)
	}
	return out
}

// errShortHeader signals that more bytes are needed to finish header parsing
// (incremental reads by diskCol).
var errShortHeader = fmt.Errorf("graphar: short header")

// parseColHeader parses the header prefix of a column file, returning the
// header byte length. Returns errShortHeader when data is a truncated prefix.
func parseColHeader(data []byte, path string) (*colFile, int, error) {
	if len(data) < 5 {
		return nil, 0, errShortHeader
	}
	if string(data[:4]) != colMagic {
		return nil, 0, fmt.Errorf("graphar: %s: bad magic", path)
	}
	cf := &colFile{kind: graph.Kind(data[4])}
	pos := 5
	readU := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n == 0 {
			return 0, errShortHeader
		}
		if n < 0 {
			return 0, fmt.Errorf("graphar: %s: corrupt header varint", path)
		}
		pos += n
		return v, nil
	}
	rows, err := readU()
	if err != nil {
		return nil, 0, err
	}
	cs, err := readU()
	if err != nil {
		return nil, 0, err
	}
	nc, err := readU()
	if err != nil {
		return nil, 0, err
	}
	cf.totalRows = int(rows)
	cf.chunkSize = int(cs)
	if cf.chunkSize <= 0 {
		return nil, 0, fmt.Errorf("graphar: %s: invalid chunk size", path)
	}
	cf.offsets = make([]int64, nc)
	cf.lengths = make([]int, nc)
	cf.firstKeys = make([]int64, nc)
	var off int64
	for c := range cf.offsets {
		l, err := readU()
		if err != nil {
			return nil, 0, err
		}
		fk, n := binary.Varint(data[pos:])
		if n == 0 {
			return nil, 0, errShortHeader
		}
		if n < 0 {
			return nil, 0, fmt.Errorf("graphar: %s: corrupt header varint", path)
		}
		pos += n
		cf.offsets[c] = off
		cf.lengths[c] = int(l)
		cf.firstKeys[c] = fk
		off += int64(l)
	}
	return cf, pos, nil
}

func parseColFile(data []byte, path string) (*colFile, error) {
	cf, hdrLen, err := parseColHeader(data, path)
	if err != nil {
		if err == errShortHeader {
			return nil, fmt.Errorf("graphar: %s: truncated header", path)
		}
		return nil, err
	}
	rest := data[hdrLen:]
	var need int64
	for c := range cf.offsets {
		need = cf.offsets[c] + int64(cf.lengths[c])
	}
	if int64(len(rest)) < need {
		return nil, fmt.Errorf("graphar: %s: truncated payload", path)
	}
	cf.data = rest
	return cf, nil
}

func (cf *colFile) numChunks() int { return len(cf.offsets) }

func (cf *colFile) chunkRows(c int) int {
	lo := c * cf.chunkSize
	hi := lo + cf.chunkSize
	if hi > cf.totalRows {
		hi = cf.totalRows
	}
	return hi - lo
}

func (cf *colFile) chunkPayload(c int) []byte {
	return cf.data[cf.offsets[c] : cf.offsets[c]+int64(cf.lengths[c])]
}

// ---- chunk encodings ----

// encodeInts: zigzag varint deltas; first value is a raw zigzag varint.
func encodeInts(vals []int64, buf []byte) []byte {
	prev := int64(0)
	for _, v := range vals {
		buf = binary.AppendVarint(buf, v-prev)
		prev = v
	}
	return buf
}

func decodeInts(payload []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	prev := int64(0)
	for i := 0; i < n; i++ {
		d, sz := binary.Varint(payload)
		if sz <= 0 {
			return nil, fmt.Errorf("graphar: truncated int chunk at row %d", i)
		}
		payload = payload[sz:]
		prev += d
		out[i] = prev
	}
	return out, nil
}

func encodeFloats(vals []float64, buf []byte) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeFloats(payload []byte, n int) ([]float64, error) {
	if len(payload) < 8*n {
		return nil, fmt.Errorf("graphar: truncated float chunk")
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out, nil
}

func encodeStrings(vals []string, buf []byte) []byte {
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func decodeStrings(payload []byte, n int) ([]string, error) {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		l, sz := binary.Uvarint(payload)
		if sz <= 0 || uint64(len(payload)-sz) < l {
			return nil, fmt.Errorf("graphar: truncated string chunk at row %d", i)
		}
		out[i] = string(payload[sz : sz+int(l)])
		payload = payload[sz+int(l):]
	}
	return out, nil
}

func encodeBools(vals []bool, buf []byte) []byte {
	for _, v := range vals {
		b := byte(0)
		if v {
			b = 1
		}
		buf = append(buf, b)
	}
	return buf
}

func decodeBools(payload []byte, n int) ([]bool, error) {
	if len(payload) < n {
		return nil, fmt.Errorf("graphar: truncated bool chunk")
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = payload[i] != 0
	}
	return out, nil
}
