package graphar

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/graph"
)

// Options configures Write.
type Options struct {
	// ChunkSize is the number of rows per chunk; 0 selects the default.
	ChunkSize int
}

// Write persists a batch as a GraphAr archive directory. Vertices are sorted
// by external ID per label and edges by (src, dst) per label, so structural
// columns carry monotone keys and chunk-skip statistics are effective. A
// reverse-sorted edge index is written alongside to serve in-neighbor
// retrieval directly from storage.
func Write(dir string, b *graph.Batch, opt Options) error {
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	s := b.Schema
	if s == nil {
		return fmt.Errorf("graphar: batch has no schema")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	meta := &Meta{FormatVersion: 1, ChunkSize: chunk}

	// Group vertices per label, sorted by external ID.
	perLabelV := make([][]graph.VertexRecord, s.NumVertexLabels())
	for _, v := range b.Vertices {
		if int(v.Label) < 0 || int(v.Label) >= len(perLabelV) {
			return fmt.Errorf("graphar: vertex label %d out of range", v.Label)
		}
		perLabelV[v.Label] = append(perLabelV[v.Label], v)
	}
	for l, vs := range perLabelV {
		sort.Slice(vs, func(i, j int) bool { return vs[i].ExtID < vs[j].ExtID })
		lm := LabelMeta{Name: s.Vertices[l].Name, Count: len(vs)}
		for _, p := range s.Vertices[l].Props {
			lm.Props = append(lm.Props, PropMeta{Name: p.Name, Kind: kindName(p.Kind)})
		}
		meta.VertexLabels = append(meta.VertexLabels, lm)

		exts := make([]int64, len(vs))
		for i, v := range vs {
			exts[i] = v.ExtID
		}
		if err := writeIntFile(filepath.Join(dir, vertexExtFile(l)), exts, chunk, true); err != nil {
			return err
		}
		for pi, pd := range s.Vertices[l].Props {
			vals := make([]graph.Value, len(vs))
			for i, v := range vs {
				if pi < len(v.Props) {
					vals[i] = v.Props[pi]
				}
			}
			if err := writeValueFile(filepath.Join(dir, vertexPropFile(l, pi)), pd.Kind, vals, chunk); err != nil {
				return err
			}
		}
	}

	// Group edges per label.
	perLabelE := make([][]graph.EdgeRecord, s.NumEdgeLabels())
	for _, e := range b.Edges {
		if int(e.Label) < 0 || int(e.Label) >= len(perLabelE) {
			return fmt.Errorf("graphar: edge label %d out of range", e.Label)
		}
		perLabelE[e.Label] = append(perLabelE[e.Label], e)
	}
	for l, es := range perLabelE {
		sort.Slice(es, func(i, j int) bool {
			if es[i].Src != es[j].Src {
				return es[i].Src < es[j].Src
			}
			return es[i].Dst < es[j].Dst
		})
		el := s.Edges[l]
		em := EdgeMeta{
			Name:  el.Name,
			Src:   s.VertexLabelName(el.Src),
			Dst:   s.VertexLabelName(el.Dst),
			Count: len(es),
		}
		for _, p := range el.Props {
			em.Props = append(em.Props, PropMeta{Name: p.Name, Kind: kindName(p.Kind)})
		}
		meta.EdgeLabels = append(meta.EdgeLabels, em)

		srcs := make([]int64, len(es))
		dsts := make([]int64, len(es))
		for i, e := range es {
			srcs[i], dsts[i] = e.Src, e.Dst
		}
		if err := writeIntFile(filepath.Join(dir, edgeSrcFile(l)), srcs, chunk, true); err != nil {
			return err
		}
		if err := writeIntFile(filepath.Join(dir, edgeDstFile(l)), dsts, chunk, false); err != nil {
			return err
		}
		for pi, pd := range el.Props {
			vals := make([]graph.Value, len(es))
			for i, e := range es {
				if pi < len(e.Props) {
					vals[i] = e.Props[pi]
				}
			}
			if err := writeValueFile(filepath.Join(dir, edgePropFile(l, pi)), pd.Kind, vals, chunk); err != nil {
				return err
			}
		}

		// Reverse index sorted by (dst, src): columns rdst, rsrc, rrow where
		// rrow is the forward row (the edge's identity in this label).
		order := make([]int, len(es))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			i, j := order[a], order[b]
			if es[i].Dst != es[j].Dst {
				return es[i].Dst < es[j].Dst
			}
			return es[i].Src < es[j].Src
		})
		rdst := make([]int64, len(es))
		rsrc := make([]int64, len(es))
		rrow := make([]int64, len(es))
		for i, fwd := range order {
			rdst[i] = es[fwd].Dst
			rsrc[i] = es[fwd].Src
			rrow[i] = int64(fwd)
		}
		if err := writeIntFile(filepath.Join(dir, edgeRevDstFile(l)), rdst, chunk, true); err != nil {
			return err
		}
		if err := writeIntFile(filepath.Join(dir, edgeRevSrcFile(l)), rsrc, chunk, false); err != nil {
			return err
		}
		if err := writeIntFile(filepath.Join(dir, edgeRevRowFile(l)), rrow, chunk, false); err != nil {
			return err
		}
	}

	return writeMeta(dir, meta)
}

func vertexExtFile(l int) string     { return fmt.Sprintf("v_%d_ext.dat", l) }
func vertexPropFile(l, p int) string { return fmt.Sprintf("v_%d_p%d.dat", l, p) }
func edgeSrcFile(l int) string       { return fmt.Sprintf("e_%d_src.dat", l) }
func edgeDstFile(l int) string       { return fmt.Sprintf("e_%d_dst.dat", l) }
func edgePropFile(l, p int) string   { return fmt.Sprintf("e_%d_p%d.dat", l, p) }
func edgeRevDstFile(l int) string    { return fmt.Sprintf("e_%d_rdst.dat", l) }
func edgeRevSrcFile(l int) string    { return fmt.Sprintf("e_%d_rsrc.dat", l) }
func edgeRevRowFile(l int) string    { return fmt.Sprintf("e_%d_rrow.dat", l) }

// writeIntFile encodes a structural (non-null) int64 column. withStats
// records per-chunk first keys for chunk skipping on sorted columns.
func writeIntFile(path string, vals []int64, chunk int, withStats bool) error {
	var fk func(lo int) int64
	if withStats {
		fk = func(lo int) int64 { return vals[lo] }
	}
	data := encodeColumn(graph.KindInt, len(vals), chunk, func(lo, hi int, buf []byte) []byte {
		return encodeInts(vals[lo:hi], buf)
	}, fk)
	return os.WriteFile(path, data, 0o644)
}

// writeValueFile encodes a property column with a per-chunk null bitmap.
func writeValueFile(path string, kind graph.Kind, vals []graph.Value, chunk int) error {
	data := encodeColumn(kind, len(vals), chunk, func(lo, hi int, buf []byte) []byte {
		return encodeValueChunk(kind, vals[lo:hi], buf)
	}, nil)
	return os.WriteFile(path, data, 0o644)
}

// encodeValueChunk: u8 hasNulls | [bitmap] | payload (nulls as zero values).
func encodeValueChunk(kind graph.Kind, vals []graph.Value, buf []byte) []byte {
	hasNulls := false
	for _, v := range vals {
		if v.IsNull() {
			hasNulls = true
			break
		}
	}
	if hasNulls {
		buf = append(buf, 1)
		bitmap := make([]byte, (len(vals)+7)/8)
		for i, v := range vals {
			if v.IsNull() {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, bitmap...)
	} else {
		buf = append(buf, 0)
	}
	switch kind {
	case graph.KindInt:
		ints := make([]int64, len(vals))
		for i, v := range vals {
			ints[i] = v.I
		}
		buf = encodeInts(ints, buf)
	case graph.KindFloat:
		fs := make([]float64, len(vals))
		for i, v := range vals {
			fs[i] = v.F
		}
		buf = encodeFloats(fs, buf)
	case graph.KindString:
		ss := make([]string, len(vals))
		for i, v := range vals {
			ss[i] = v.S
		}
		buf = encodeStrings(ss, buf)
	case graph.KindBool:
		bs := make([]bool, len(vals))
		for i, v := range vals {
			bs[i] = v.I != 0
		}
		buf = encodeBools(bs, buf)
	}
	return buf
}

// decodeValueChunk reverses encodeValueChunk.
func decodeValueChunk(kind graph.Kind, payload []byte, n int) ([]graph.Value, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("graphar: empty value chunk")
	}
	hasNulls := payload[0] == 1
	payload = payload[1:]
	var bitmap []byte
	if hasNulls {
		bl := (n + 7) / 8
		if len(payload) < bl {
			return nil, fmt.Errorf("graphar: truncated null bitmap")
		}
		bitmap = payload[:bl]
		payload = payload[bl:]
	}
	out := make([]graph.Value, n)
	switch kind {
	case graph.KindInt:
		ints, err := decodeInts(payload, n)
		if err != nil {
			return nil, err
		}
		for i, v := range ints {
			out[i] = graph.IntValue(v)
		}
	case graph.KindFloat:
		fs, err := decodeFloats(payload, n)
		if err != nil {
			return nil, err
		}
		for i, v := range fs {
			out[i] = graph.FloatValue(v)
		}
	case graph.KindString:
		ss, err := decodeStrings(payload, n)
		if err != nil {
			return nil, err
		}
		for i, v := range ss {
			out[i] = graph.StringValue(v)
		}
	case graph.KindBool:
		bs, err := decodeBools(payload, n)
		if err != nil {
			return nil, err
		}
		for i, v := range bs {
			out[i] = graph.BoolValue(v)
		}
	default:
		return nil, fmt.Errorf("graphar: unsupported value kind %v", kind)
	}
	if hasNulls {
		for i := range out {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				out[i] = graph.NullValue
			}
		}
	}
	return out, nil
}
