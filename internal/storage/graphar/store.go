package graphar

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/grin"
)

// Store serves GRIN reads directly from an archive directory: chunks are
// fetched from disk on demand and held in a bounded cache. Vertices of each
// label occupy a contiguous internal ID range (the files are sorted by
// external ID), edge IDs are per-label row numbers offset by a label base.
// This is the "GraphAr as a direct GRIN data source" configuration of
// Fig 7(a): correct on every workload, slowest backend by design.
//
// grin:fallback — the batched traits deliberately stay on the generic
// helpers: every access may fault a chunk in from disk, so a native batch
// path would still pay per-element cache lookups and README's capability
// matrix documents the backend as "fallback" across the board.
type Store struct {
	dir    string
	meta   *Meta
	schema *graph.Schema

	labelStart []graph.VID // per vertex label, plus total
	edgeBase   []graph.EID // per edge label, plus total

	mu    sync.Mutex
	files map[string]*diskCol
	// Bounded decoded-chunk caches; wiped when full.
	intCache   map[chunkKey][]int64
	valCache   map[chunkKey][]graph.Value
	cacheLimit int
}

type chunkKey struct {
	file  string
	chunk int
}

var (
	_ grin.Graph          = (*Store)(nil)
	_ grin.PropertyReader = (*Store)(nil)
	_ grin.WeightReader   = (*Store)(nil)
	_ grin.Index          = (*Store)(nil)
	_ grin.PredicatePush  = (*Store)(nil)
	_ grin.Named          = (*Store)(nil)
)

// Open prepares an archive directory for direct GRIN access.
func Open(dir string) (*Store, error) {
	m, err := ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	schema, err := m.SchemaOf()
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:        dir,
		meta:       m,
		schema:     schema,
		files:      make(map[string]*diskCol),
		intCache:   make(map[chunkKey][]int64),
		valCache:   make(map[chunkKey][]graph.Value),
		cacheLimit: 256,
	}
	st.labelStart = make([]graph.VID, len(m.VertexLabels)+1)
	for l, vl := range m.VertexLabels {
		st.labelStart[l+1] = st.labelStart[l] + graph.VID(vl.Count)
	}
	st.edgeBase = make([]graph.EID, len(m.EdgeLabels)+1)
	for l, el := range m.EdgeLabels {
		st.edgeBase[l+1] = st.edgeBase[l] + graph.EID(el.Count)
	}
	return st, nil
}

// Close releases open file handles.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for _, dc := range st.files {
		if err := dc.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.files = make(map[string]*diskCol)
	return first
}

// BackendName implements grin.Named.
func (st *Store) BackendName() string { return "graphar" }

// NumVertices implements grin.Graph.
func (st *Store) NumVertices() int { return int(st.labelStart[len(st.labelStart)-1]) }

// NumEdges implements grin.Graph.
func (st *Store) NumEdges() int { return int(st.edgeBase[len(st.edgeBase)-1]) }

// Schema implements grin.PropertyReader.
func (st *Store) Schema() *graph.Schema { return st.schema }

// VertexLabel implements grin.PropertyReader.
func (st *Store) VertexLabel(v graph.VID) graph.LabelID {
	for l := 1; l < len(st.labelStart); l++ {
		if v < st.labelStart[l] {
			return graph.LabelID(l - 1)
		}
	}
	return graph.LabelID(len(st.labelStart) - 2)
}

// LabelRange implements grin.Index.
func (st *Store) LabelRange(label graph.LabelID) (graph.VID, graph.VID, bool) {
	if label == graph.AnyLabel {
		return 0, graph.VID(st.NumVertices()), true
	}
	if int(label) < 0 || int(label) >= len(st.meta.VertexLabels) {
		return 0, 0, false
	}
	return st.labelStart[label], st.labelStart[label+1], true
}

// ExternalID implements grin.Index (one chunk fetch).
func (st *Store) ExternalID(v graph.VID) int64 {
	l := st.VertexLabel(v)
	row := int(v - st.labelStart[l])
	vals, err := st.intRows(vertexExtFile(int(l)), row, row+1)
	if err != nil || len(vals) == 0 {
		return -1
	}
	return vals[0]
}

// LookupVertex implements grin.Index via chunk-skip statistics plus an
// in-chunk binary search (the ext column is sorted).
func (st *Store) LookupVertex(label graph.LabelID, ext int64) (graph.VID, bool) {
	if label == graph.AnyLabel {
		for l := 0; l < len(st.meta.VertexLabels); l++ {
			if v, ok := st.LookupVertex(graph.LabelID(l), ext); ok {
				return v, true
			}
		}
		return graph.NilVID, false
	}
	if int(label) < 0 || int(label) >= len(st.meta.VertexLabels) {
		return graph.NilVID, false
	}
	dc, err := st.col(vertexExtFile(int(label)))
	if err != nil || dc.hdr.totalRows == 0 {
		return graph.NilVID, false
	}
	c := chunkForKey(dc.hdr.firstKeys, ext)
	if c < 0 {
		return graph.NilVID, false
	}
	vals, err := st.intChunk(dc, c)
	if err != nil {
		return graph.NilVID, false
	}
	i := sort.Search(len(vals), func(i int) bool { return vals[i] >= ext })
	if i < len(vals) && vals[i] == ext {
		return st.labelStart[label] + graph.VID(c*dc.hdr.chunkSize+i), true
	}
	return graph.NilVID, false
}

// chunkForKey picks the last chunk whose firstKey <= key on a sorted column
// (for point lookups of unique keys).
func chunkForKey(firstKeys []int64, key int64) int {
	i := sort.Search(len(firstKeys), func(i int) bool { return firstKeys[i] > key })
	return i - 1
}

// chunkForRunStart picks the earliest chunk that can contain key when keys
// repeat: a run of equal keys may begin in the chunk before the first chunk
// whose firstKey equals the key.
func chunkForRunStart(firstKeys []int64, key int64) int {
	i := sort.Search(len(firstKeys), func(i int) bool { return firstKeys[i] >= key })
	if i > 0 {
		i--
	}
	return i
}

// VertexProp implements grin.PropertyReader (one chunk fetch).
func (st *Store) VertexProp(v graph.VID, p graph.PropID) (graph.Value, bool) {
	l := st.VertexLabel(v)
	if int(p) < 0 || int(p) >= len(st.meta.VertexLabels[l].Props) {
		return graph.NullValue, false
	}
	kind, err := kindFromName(st.meta.VertexLabels[l].Props[p].Kind)
	if err != nil {
		return graph.NullValue, false
	}
	row := int(v - st.labelStart[l])
	val, err := st.valueRow(vertexPropFile(int(l), int(p)), kind, row)
	if err != nil || val.IsNull() {
		return graph.NullValue, false
	}
	return val, true
}

// edgeLabelOf locates the label owning an EID and its in-label row.
func (st *Store) edgeLabelOf(e graph.EID) (graph.LabelID, int) {
	for l := 1; l < len(st.edgeBase); l++ {
		if e < st.edgeBase[l] {
			return graph.LabelID(l - 1), int(e - st.edgeBase[l-1])
		}
	}
	return graph.AnyLabel, 0
}

// EdgeLabel implements grin.PropertyReader.
func (st *Store) EdgeLabel(e graph.EID) graph.LabelID {
	l, _ := st.edgeLabelOf(e)
	return l
}

// EdgeProp implements grin.PropertyReader.
func (st *Store) EdgeProp(e graph.EID, p graph.PropID) (graph.Value, bool) {
	l, row := st.edgeLabelOf(e)
	if l == graph.AnyLabel || int(p) < 0 || int(p) >= len(st.meta.EdgeLabels[l].Props) {
		return graph.NullValue, false
	}
	kind, err := kindFromName(st.meta.EdgeLabels[l].Props[p].Kind)
	if err != nil {
		return graph.NullValue, false
	}
	val, err := st.valueRow(edgePropFile(int(l), int(p)), kind, row)
	if err != nil || val.IsNull() {
		return graph.NullValue, false
	}
	return val, true
}

// EdgeWeight implements grin.WeightReader via the "weight" float property.
func (st *Store) EdgeWeight(e graph.EID) float64 {
	l, _ := st.edgeLabelOf(e)
	if l == graph.AnyLabel {
		return 1.0
	}
	p := st.schema.EdgePropID(l, "weight")
	if p == graph.NoProp {
		return 1.0
	}
	v, ok := st.EdgeProp(e, p)
	if !ok {
		return 1.0
	}
	return v.Float()
}

// Degree implements grin.Graph.
func (st *Store) Degree(v graph.VID, dir graph.Direction) int {
	d := 0
	st.Neighbors(v, dir, func(graph.VID, graph.EID) bool { d++; return true })
	return d
}

// Neighbors implements grin.Graph by scanning only the chunks whose key
// range covers the vertex's external ID — the storage-level neighbor
// retrieval the paper credits GraphAr with.
func (st *Store) Neighbors(v graph.VID, dir graph.Direction, yield func(graph.VID, graph.EID) bool) {
	if dir == graph.Both {
		stop := false
		st.Neighbors(v, graph.Out, func(n graph.VID, e graph.EID) bool {
			if !yield(n, e) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
		st.Neighbors(v, graph.In, yield)
		return
	}
	vl := st.VertexLabel(v)
	ext := st.ExternalID(v)
	for l, el := range st.meta.EdgeLabels {
		elDef := st.schema.Edges[l]
		if el.Count == 0 {
			continue
		}
		if dir == graph.Out {
			if elDef.Src != vl {
				continue
			}
			if !st.scanEdgeRuns(l, ext, elDef.Dst, edgeSrcFile(l), edgeDstFile(l), "", yield) {
				return
			}
		} else {
			if elDef.Dst != vl {
				continue
			}
			if !st.scanEdgeRuns(l, ext, elDef.Src, edgeRevDstFile(l), edgeRevSrcFile(l), edgeRevRowFile(l), yield) {
				return
			}
		}
	}
}

// scanEdgeRuns walks the run of rows whose sorted key column equals ext,
// resolving the other endpoint to a VID and the row to an EID. rowFile, when
// set, maps reverse rows to forward rows (in-direction).
func (st *Store) scanEdgeRuns(l int, ext int64, otherLabel graph.LabelID, keyFile, otherFile, rowFile string, yield func(graph.VID, graph.EID) bool) bool {
	dc, err := st.col(keyFile)
	if err != nil || dc.hdr.totalRows == 0 {
		return true
	}
	for c := chunkForRunStart(dc.hdr.firstKeys, ext); c < dc.hdr.numChunks(); c++ {
		keys, err := st.intChunk(dc, c)
		if err != nil {
			return true
		}
		if len(keys) == 0 || keys[0] > ext {
			return true
		}
		lo := sort.Search(len(keys), func(i int) bool { return keys[i] >= ext })
		if lo == len(keys) {
			continue // run may start in a later chunk only if firstKey <= ext there; loop guards
		}
		if keys[lo] != ext {
			return true
		}
		hi := lo
		for hi < len(keys) && keys[hi] == ext {
			hi++
		}
		base := c * dc.hdr.chunkSize
		others, err := st.intRows(otherFile, base+lo, base+hi)
		if err != nil {
			return true
		}
		var rows []int64
		if rowFile != "" {
			rows, err = st.intRows(rowFile, base+lo, base+hi)
			if err != nil {
				return true
			}
		}
		for i, other := range others {
			nbr, ok := st.LookupVertex(otherLabel, other)
			if !ok {
				continue
			}
			fwdRow := base + lo + i
			if rows != nil {
				fwdRow = int(rows[i])
			}
			if !yield(nbr, st.edgeBase[l]+graph.EID(fwdRow)) {
				return false
			}
		}
		if hi < len(keys) {
			return true // run ended within this chunk
		}
	}
	return true
}

// ScanVertices implements grin.PredicatePush.
func (st *Store) ScanVertices(label graph.LabelID, pred func(graph.VID) bool, yield func(graph.VID) bool) {
	lo, hi, ok := st.LabelRange(label)
	if !ok {
		return
	}
	for v := lo; v < hi; v++ {
		if pred != nil && !pred(v) {
			continue
		}
		if !yield(v) {
			return
		}
	}
}

// ---- chunk fetch machinery ----

type diskCol struct {
	f         *os.File
	hdr       *colFile
	dataStart int64
}

func (st *Store) col(name string) (*diskCol, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if dc, ok := st.files[name]; ok {
		return dc, nil
	}
	path := filepath.Join(st.dir, name)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Parse the header from an incrementally grown prefix.
	bufSize := 4096
	var hdr *colFile
	var hdrLen int
	for {
		buf := make([]byte, bufSize)
		n, _ := f.ReadAt(buf, 0)
		hdr, hdrLen, err = parseColHeader(buf[:n], path)
		if err == errShortHeader && n == bufSize {
			bufSize *= 4
			continue
		}
		if err != nil {
			f.Close()
			if err == errShortHeader {
				return nil, fmt.Errorf("graphar: %s: truncated header", path)
			}
			return nil, err
		}
		break
	}
	dc := &diskCol{f: f, hdr: hdr, dataStart: int64(hdrLen)}
	st.files[name] = dc
	return dc, nil
}

func (st *Store) readChunkBytes(dc *diskCol, c int) ([]byte, error) {
	buf := make([]byte, dc.hdr.lengths[c])
	_, err := dc.f.ReadAt(buf, dc.dataStart+dc.hdr.offsets[c])
	return buf, err
}

func (st *Store) intChunk(dc *diskCol, c int) ([]int64, error) {
	key := chunkKey{file: dc.f.Name(), chunk: c}
	st.mu.Lock()
	if vals, ok := st.intCache[key]; ok {
		st.mu.Unlock()
		return vals, nil
	}
	st.mu.Unlock()
	payload, err := st.readChunkBytes(dc, c)
	if err != nil {
		return nil, err
	}
	vals, err := decodeInts(payload, dc.hdr.chunkRows(c))
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	if len(st.intCache) >= st.cacheLimit {
		st.intCache = make(map[chunkKey][]int64)
	}
	st.intCache[key] = vals
	st.mu.Unlock()
	return vals, nil
}

// intRows fetches rows [lo, hi) of a structural int column.
func (st *Store) intRows(name string, lo, hi int) ([]int64, error) {
	dc, err := st.col(name)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, hi-lo)
	for row := lo; row < hi; {
		c := row / dc.hdr.chunkSize
		vals, err := st.intChunk(dc, c)
		if err != nil {
			return nil, err
		}
		start := row - c*dc.hdr.chunkSize
		end := len(vals)
		if c*dc.hdr.chunkSize+end > hi {
			end = hi - c*dc.hdr.chunkSize
		}
		out = append(out, vals[start:end]...)
		row = c*dc.hdr.chunkSize + end
	}
	return out, nil
}

func (st *Store) valueRow(name string, kind graph.Kind, row int) (graph.Value, error) {
	dc, err := st.col(name)
	if err != nil {
		return graph.NullValue, err
	}
	if row < 0 || row >= dc.hdr.totalRows {
		return graph.NullValue, fmt.Errorf("graphar: row %d out of range", row)
	}
	c := row / dc.hdr.chunkSize
	key := chunkKey{file: dc.f.Name(), chunk: c}
	st.mu.Lock()
	vals, ok := st.valCache[key]
	st.mu.Unlock()
	if !ok {
		payload, err := st.readChunkBytes(dc, c)
		if err != nil {
			return graph.NullValue, err
		}
		vals, err = decodeValueChunk(kind, payload, dc.hdr.chunkRows(c))
		if err != nil {
			return graph.NullValue, err
		}
		st.mu.Lock()
		if len(st.valCache) >= st.cacheLimit {
			st.valCache = make(map[chunkKey][]graph.Value)
		}
		st.valCache[key] = vals
		st.mu.Unlock()
	}
	return vals[row-c*dc.hdr.chunkSize], nil
}
