package graphar

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// LoadBatch reads a whole archive into a Batch, decoding column files in
// parallel. parallelism <= 0 selects GOMAXPROCS. This is the bulk-load path
// measured in Exp-1d (Fig 7d) against the CSV baseline.
func LoadBatch(dir string, parallelism int) (*graph.Batch, error) {
	m, err := ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	schema, err := m.SchemaOf()
	if err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	// Plan one decode task per column file.
	type task func() error
	var tasks []task
	var mu sync.Mutex // guards result slices during assembly

	vertexExt := make([][]int64, len(m.VertexLabels))
	vertexProps := make([][][]graph.Value, len(m.VertexLabels))
	for l := range m.VertexLabels {
		l := l
		vertexProps[l] = make([][]graph.Value, len(m.VertexLabels[l].Props))
		tasks = append(tasks, func() error {
			vals, err := readIntFile(filepath.Join(dir, vertexExtFile(l)), m.VertexLabels[l].Count)
			if err != nil {
				return err
			}
			mu.Lock()
			vertexExt[l] = vals
			mu.Unlock()
			return nil
		})
		for pi := range m.VertexLabels[l].Props {
			pi := pi
			kind, err := kindFromName(m.VertexLabels[l].Props[pi].Kind)
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, func() error {
				vals, err := readValueFile(filepath.Join(dir, vertexPropFile(l, pi)), kind, m.VertexLabels[l].Count)
				if err != nil {
					return err
				}
				mu.Lock()
				vertexProps[l][pi] = vals
				mu.Unlock()
				return nil
			})
		}
	}

	edgeSrc := make([][]int64, len(m.EdgeLabels))
	edgeDst := make([][]int64, len(m.EdgeLabels))
	edgeProps := make([][][]graph.Value, len(m.EdgeLabels))
	for l := range m.EdgeLabels {
		l := l
		edgeProps[l] = make([][]graph.Value, len(m.EdgeLabels[l].Props))
		tasks = append(tasks, func() error {
			vals, err := readIntFile(filepath.Join(dir, edgeSrcFile(l)), m.EdgeLabels[l].Count)
			if err != nil {
				return err
			}
			mu.Lock()
			edgeSrc[l] = vals
			mu.Unlock()
			return nil
		})
		tasks = append(tasks, func() error {
			vals, err := readIntFile(filepath.Join(dir, edgeDstFile(l)), m.EdgeLabels[l].Count)
			if err != nil {
				return err
			}
			mu.Lock()
			edgeDst[l] = vals
			mu.Unlock()
			return nil
		})
		for pi := range m.EdgeLabels[l].Props {
			pi := pi
			kind, err := kindFromName(m.EdgeLabels[l].Props[pi].Kind)
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, func() error {
				vals, err := readValueFile(filepath.Join(dir, edgePropFile(l, pi)), kind, m.EdgeLabels[l].Count)
				if err != nil {
					return err
				}
				mu.Lock()
				edgeProps[l][pi] = vals
				mu.Unlock()
				return nil
			})
		}
	}

	// Run tasks on a bounded worker pool, capturing the first error.
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	for _, tk := range tasks {
		tk := tk
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := tk(); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Assemble the batch.
	b := graph.NewBatch(schema)
	for l := range m.VertexLabels {
		for i, ext := range vertexExt[l] {
			var props []graph.Value
			if np := len(vertexProps[l]); np > 0 {
				props = make([]graph.Value, np)
				for pi := range props {
					props[pi] = vertexProps[l][pi][i]
				}
			}
			b.Vertices = append(b.Vertices, graph.VertexRecord{
				Label: graph.LabelID(l), ExtID: ext, Props: props,
			})
		}
	}
	for l := range m.EdgeLabels {
		for i := range edgeSrc[l] {
			var props []graph.Value
			if np := len(edgeProps[l]); np > 0 {
				props = make([]graph.Value, np)
				for pi := range props {
					props[pi] = edgeProps[l][pi][i]
				}
			}
			b.Edges = append(b.Edges, graph.EdgeRecord{
				Label: graph.LabelID(l), Src: edgeSrc[l][i], Dst: edgeDst[l][i], Props: props,
			})
		}
	}
	return b, nil
}

// readIntFile decodes a whole structural int column and checks row count.
func readIntFile(path string, wantRows int) ([]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graphar: %w", err)
	}
	cf, err := parseColFile(data, path)
	if err != nil {
		return nil, err
	}
	if cf.totalRows != wantRows {
		return nil, fmt.Errorf("graphar: %s: %d rows, manifest says %d", path, cf.totalRows, wantRows)
	}
	out := make([]int64, 0, cf.totalRows)
	for c := 0; c < cf.numChunks(); c++ {
		vals, err := decodeInts(cf.chunkPayload(c), cf.chunkRows(c))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, vals...)
	}
	return out, nil
}

// readValueFile decodes a whole property column.
func readValueFile(path string, kind graph.Kind, wantRows int) ([]graph.Value, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graphar: %w", err)
	}
	cf, err := parseColFile(data, path)
	if err != nil {
		return nil, err
	}
	if cf.totalRows != wantRows {
		return nil, fmt.Errorf("graphar: %s: %d rows, manifest says %d", path, cf.totalRows, wantRows)
	}
	out := make([]graph.Value, 0, cf.totalRows)
	for c := 0; c < cf.numChunks(); c++ {
		vals, err := decodeValueChunk(kind, cf.chunkPayload(c), cf.chunkRows(c))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, vals...)
	}
	return out, nil
}
