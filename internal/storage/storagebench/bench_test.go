// Package storagebench micro-benchmarks the batched GRIN storage paths
// against their scalar (per-vertex / per-value) equivalents on every
// backend. CI runs these once per build and uploads the results as
// BENCH_storage.json next to BENCH_query.json, so storage-layer regressions
// are visible independently of the query runtime.
package storagebench

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/storage/gart"
	"repro/internal/storage/graphar"
	"repro/internal/storage/livegraph"
	"repro/internal/storage/vineyard"
)

// benchData is the shared topology (Datagen power-law, 5000 vertices,
// ~40k edges) and property batch (SNB, 500 persons) behind all benchmarks.
var benchData = struct {
	once   sync.Once
	simple *dataset.Simple
	batch  *graph.Batch // simple graph as a property batch
	snb    *graph.Batch
}{}

func data() {
	benchData.once.Do(func() {
		benchData.simple = dataset.Datagen("bench", 5000, 8, 42)
		benchData.batch = benchData.simple.ToBatch()
		benchData.snb = dataset.SNB(dataset.SNBOptions{Persons: 500, Seed: 17})
	})
}

// topologyStores loads the benchmark topology into every backend.
func topologyStores(b *testing.B) map[string]grin.Graph {
	b.Helper()
	data()
	stores := map[string]grin.Graph{}

	vy, err := vineyard.Load(benchData.batch)
	if err != nil {
		b.Fatal(err)
	}
	stores["vineyard"] = vy

	gs := gart.NewStore(benchData.batch.Schema, 0)
	if err := gs.LoadBatch(benchData.batch); err != nil {
		b.Fatal(err)
	}
	stores["gart"] = gs.Latest()

	cg, err := benchData.simple.ToCSR(true)
	if err != nil {
		b.Fatal(err)
	}
	stores["csr"] = cg

	lg := livegraph.NewStore(benchData.simple.N)
	for i := range benchData.simple.Src {
		if err := lg.AddEdge(benchData.simple.Src[i], benchData.simple.Dst[i], 1); err != nil {
			b.Fatal(err)
		}
	}
	stores["livegraph"] = lg

	stores["graphar"] = openGraphar(b, benchData.batch)
	return stores
}

func openGraphar(b *testing.B, batch *graph.Batch) grin.Graph {
	b.Helper()
	dir := b.TempDir()
	if err := graphar.Write(dir, batch, graphar.Options{ChunkSize: 256}); err != nil {
		b.Fatal(err)
	}
	ga, err := graphar.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ga.Close() })
	return ga
}

// frontier is every vertex in chunks of 1024 — the runtime's default batch
// shape.
const frontierChunk = 1024

// BenchmarkBatchExpand measures one full-graph frontier expansion (Out) in
// 1024-vertex batches: the batched trait (or its generic fallback) against
// the scalar per-vertex callback walk it replaces.
func BenchmarkBatchExpand(b *testing.B) {
	for name, g := range topologyStores(b) {
		n := g.NumVertices()
		b.Run(name+"/batched", func(b *testing.B) {
			var adj grin.AdjBatch
			frontier := make([]graph.VID, 0, frontierChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for lo := 0; lo < n; lo += frontierChunk {
					hi := lo + frontierChunk
					if hi > n {
						hi = n
					}
					frontier = frontier[:0]
					for v := lo; v < hi; v++ {
						frontier = append(frontier, graph.VID(v))
					}
					grin.ExpandBatch(g, frontier, graph.Out, &adj)
					total += len(adj.Nbrs)
				}
				if total != g.NumEdges() {
					b.Fatalf("expanded %d edges, want %d", total, g.NumEdges())
				}
			}
		})
		b.Run(name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for v := 0; v < n; v++ {
					grin.ForEachNeighbor(g, graph.VID(v), graph.Out, func(graph.VID, graph.EID) bool {
						total++
						return true
					})
				}
				if total != g.NumEdges() {
					b.Fatalf("expanded %d edges, want %d", total, g.NumEdges())
				}
			}
		})
	}
}

// propStores loads the SNB batch into the property-bearing backends.
func propStores(b *testing.B) map[string]grin.Graph {
	b.Helper()
	data()
	stores := map[string]grin.Graph{}

	vy, err := vineyard.Load(benchData.snb)
	if err != nil {
		b.Fatal(err)
	}
	stores["vineyard"] = vy

	gs := gart.NewStore(dataset.SNBSchema(), 0)
	if err := gs.LoadBatch(benchData.snb); err != nil {
		b.Fatal(err)
	}
	stores["gart"] = gs.Latest()

	stores["graphar"] = openGraphar(b, benchData.snb)
	return stores
}

// BenchmarkBatchGather measures gathering one int property for every Person
// vertex in 1024-element columns: the batched property trait (or fallback)
// against the scalar label-probe + boxed per-value path.
func BenchmarkBatchGather(b *testing.B) {
	for name, g := range propStores(b) {
		var persons []graph.VID
		grin.ScanLabel(g, dataset.SNBPerson, func(v graph.VID) bool {
			persons = append(persons, v)
			return true
		})
		pr := g.(grin.PropertyReader)
		b.Run(name+"/batched", func(b *testing.B) {
			out := make([]graph.Value, frontierChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < len(persons); lo += frontierChunk {
					hi := lo + frontierChunk
					if hi > len(persons) {
						hi = len(persons)
					}
					if err := grin.GatherVertexProp(g, persons[lo:hi], "creationDate", out[:hi-lo]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(name+"/scalar", func(b *testing.B) {
			out := make([]graph.Value, frontierChunk)
			schema := pr.Schema()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, v := range persons {
					label := pr.VertexLabel(v)
					pid := schema.VertexPropID(label, "creationDate")
					if pid == graph.NoProp {
						out[j%frontierChunk] = graph.NullValue
						continue
					}
					out[j%frontierChunk], _ = pr.VertexProp(v, pid)
				}
			}
		})
	}
}
