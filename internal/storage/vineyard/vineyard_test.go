package vineyard

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/grin"
)

// shopSchema mirrors the Fig 2(e) LPG: Buyer/Item/Seller with Knows/Buy/Sell.
func shopSchema() *graph.Schema {
	return graph.NewSchema(
		[]graph.VertexLabel{
			{Name: "Buyer", Props: []graph.PropDef{{Name: "username", Kind: graph.KindString}, {Name: "credits", Kind: graph.KindInt}}},
			{Name: "Item", Props: []graph.PropDef{{Name: "price", Kind: graph.KindFloat}}},
			{Name: "Seller", Props: []graph.PropDef{{Name: "rating", Kind: graph.KindFloat}}},
		},
		[]graph.EdgeLabel{
			{Name: "Knows", Src: 0, Dst: 0},
			{Name: "Buy", Src: 0, Dst: 1, Props: []graph.PropDef{{Name: "date", Kind: graph.KindInt}}},
			{Name: "Sell", Src: 2, Dst: 1, Props: []graph.PropDef{{Name: "weight", Kind: graph.KindFloat}}},
		},
	)
}

func shopBatch() *graph.Batch {
	s := shopSchema()
	b := graph.NewBatch(s)
	b.AddVertex(0, 100, graph.StringValue("A1"), graph.IntValue(8))
	b.AddVertex(0, 200, graph.StringValue("B2"), graph.IntValue(3))
	b.AddVertex(1, 10, graph.FloatValue(29.9))
	b.AddVertex(1, 20, graph.FloatValue(5.0))
	b.AddVertex(2, 7, graph.FloatValue(4.0))
	b.AddEdge(0, 100, 200)                          // A1 knows B2
	b.AddEdge(1, 100, 10, graph.IntValue(20231021)) // A1 buys item 10
	b.AddEdge(1, 200, 10, graph.IntValue(20231022)) // B2 buys item 10
	b.AddEdge(1, 200, 20, graph.IntValue(20231023)) // B2 buys item 20
	b.AddEdge(2, 7, 10, graph.FloatValue(0.5))      // seller sells item 10
	return b
}

func mustLoad(t *testing.T) *Store {
	t.Helper()
	st, err := Load(shopBatch())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLoadSizesAndLabelRanges(t *testing.T) {
	st := mustLoad(t)
	if st.NumVertices() != 5 || st.NumEdges() != 5 {
		t.Fatalf("sizes %d %d", st.NumVertices(), st.NumEdges())
	}
	lo, hi, ok := st.LabelRange(0)
	if !ok || lo != 0 || hi != 2 {
		t.Fatalf("Buyer range [%d,%d) ok=%v", lo, hi, ok)
	}
	lo, hi, _ = st.LabelRange(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("Item range [%d,%d)", lo, hi)
	}
	lo, hi, _ = st.LabelRange(2)
	if lo != 4 || hi != 5 {
		t.Fatalf("Seller range [%d,%d)", lo, hi)
	}
	lo, hi, _ = st.LabelRange(graph.AnyLabel)
	if lo != 0 || hi != 5 {
		t.Fatalf("Any range [%d,%d)", lo, hi)
	}
	if _, _, ok := st.LabelRange(99); ok {
		t.Fatal("out-of-range label should not resolve")
	}
}

func TestVertexLabelAndProps(t *testing.T) {
	st := mustLoad(t)
	a1, ok := st.LookupVertex(0, 100)
	if !ok {
		t.Fatal("A1 not found")
	}
	if st.VertexLabel(a1) != 0 {
		t.Fatal("A1 should be a Buyer")
	}
	if st.ExternalID(a1) != 100 {
		t.Fatal("external ID mismatch")
	}
	if v, ok := st.VertexProp(a1, 0); !ok || v.Str() != "A1" {
		t.Fatalf("username prop: %v %v", v, ok)
	}
	if v, ok := st.VertexProp(a1, 1); !ok || v.Int() != 8 {
		t.Fatalf("credits prop: %v %v", v, ok)
	}
	if _, ok := st.VertexProp(a1, 9); ok {
		t.Fatal("missing prop resolved")
	}
	seller, _ := st.LookupVertex(2, 7)
	if st.VertexLabel(seller) != 2 {
		t.Fatal("seller label wrong")
	}
	if v, ok := st.VertexProp(seller, 0); !ok || v.Float() != 4.0 {
		t.Fatalf("rating prop: %v", v)
	}
}

func TestEdgeTraversalAndProps(t *testing.T) {
	st := mustLoad(t)
	a1, _ := st.LookupVertex(0, 100)
	b2, _ := st.LookupVertex(0, 200)
	item10, _ := st.LookupVertex(1, 10)

	// A1 has out-edges: Knows->B2, Buy->item10.
	if st.Degree(a1, graph.Out) != 2 {
		t.Fatalf("deg out A1 = %d", st.Degree(a1, graph.Out))
	}
	foundKnows, foundBuy := false, false
	for _, tg := range st.AdjSlice(a1, graph.Out) {
		switch st.EdgeLabel(tg.Edge) {
		case 0:
			foundKnows = tg.Nbr == b2
		case 1:
			foundBuy = tg.Nbr == item10
			if v, ok := st.EdgeProp(tg.Edge, 0); !ok || v.Int() != 20231021 {
				t.Fatalf("Buy.date = %v", v)
			}
		}
	}
	if !foundKnows || !foundBuy {
		t.Fatal("A1 adjacency incomplete")
	}

	// item10 in-degree: bought twice + sold once.
	if st.Degree(item10, graph.In) != 3 {
		t.Fatalf("deg in item10 = %d", st.Degree(item10, graph.In))
	}
	// In edges share EIDs with out edges: check a Buy date via the in side.
	dates := map[int64]bool{}
	for _, tg := range st.AdjSlice(item10, graph.In) {
		if st.EdgeLabel(tg.Edge) == 1 {
			v, _ := st.EdgeProp(tg.Edge, 0)
			dates[v.Int()] = true
		}
	}
	if !dates[20231021] || !dates[20231022] {
		t.Fatalf("in-side Buy dates wrong: %v", dates)
	}

	// Both direction covers out then in.
	n := 0
	st.Neighbors(item10, graph.Both, func(graph.VID, graph.EID) bool { n++; return true })
	if n != 3 {
		t.Fatalf("Both neighbors = %d", n)
	}
}

func TestEdgeWeightFastPath(t *testing.T) {
	st := mustLoad(t)
	seller, _ := st.LookupVertex(2, 7)
	adj := st.AdjSlice(seller, graph.Out)
	if len(adj) != 1 {
		t.Fatalf("seller out deg = %d", len(adj))
	}
	if w := st.EdgeWeight(adj[0].Edge); w != 0.5 {
		t.Fatalf("Sell weight = %v", w)
	}
	// Unweighted labels default to 1.
	a1, _ := st.LookupVertex(0, 100)
	for _, tg := range st.AdjSlice(a1, graph.Out) {
		if st.EdgeLabel(tg.Edge) == 0 && st.EdgeWeight(tg.Edge) != 1.0 {
			t.Fatal("Knows weight should default to 1")
		}
	}
}

func TestScanVerticesWithPredicate(t *testing.T) {
	st := mustLoad(t)
	var buyers []graph.VID
	st.ScanVertices(0, nil, func(v graph.VID) bool {
		buyers = append(buyers, v)
		return true
	})
	if len(buyers) != 2 {
		t.Fatalf("buyers scan got %v", buyers)
	}
	// Predicate pushdown: credits > 5.
	var rich []graph.VID
	st.ScanVertices(0, func(v graph.VID) bool {
		c, _ := st.VertexProp(v, 1)
		return c.Int() > 5
	}, func(v graph.VID) bool {
		rich = append(rich, v)
		return true
	})
	if len(rich) != 1 || st.ExternalID(rich[0]) != 100 {
		t.Fatalf("predicate scan got %v", rich)
	}
}

func TestLoadErrors(t *testing.T) {
	s := shopSchema()
	b := graph.NewBatch(s)
	b.AddVertex(0, 1, graph.StringValue("x"), graph.IntValue(0))
	b.AddEdge(0, 1, 999) // dangling
	if _, err := Load(b); err == nil {
		t.Fatal("dangling edge accepted")
	}

	b2 := graph.NewBatch(s)
	b2.AddVertex(0, 1, graph.StringValue("x"), graph.IntValue(0))
	b2.AddVertex(0, 1, graph.StringValue("y"), graph.IntValue(0))
	if _, err := Load(b2); err == nil {
		t.Fatal("duplicate vertex accepted")
	}

	if _, err := Load(&graph.Batch{}); err == nil {
		t.Fatal("schemaless batch accepted")
	}
}

func TestGRINTraitSurface(t *testing.T) {
	st := mustLoad(t)
	want := []grin.Trait{
		grin.TraitTopology, grin.TraitAdjArray, grin.TraitProperty,
		grin.TraitWeight, grin.TraitIndex, grin.TraitPredicate,
	}
	for _, tr := range want {
		if !grin.Has(st, tr) {
			t.Errorf("vineyard should provide %v", tr)
		}
	}
	if grin.Has(st, grin.TraitVersioned) || grin.Has(st, grin.TraitPartition) {
		t.Error("vineyard should not claim versioned/partition traits")
	}
	if st.BackendName() != "vineyard" {
		t.Error("backend name")
	}
}

func TestScanLabelHelperUsesRanges(t *testing.T) {
	st := mustLoad(t)
	count := 0
	grin.ScanLabel(st, 1, func(v graph.VID) bool {
		if st.VertexLabel(v) != 1 {
			t.Fatalf("ScanLabel yielded wrong label for %d", v)
		}
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("ScanLabel(Item) count = %d", count)
	}
}

// TestRandomizedRoundTrip loads a random simple graph and verifies degrees
// and external-ID round trips.
func TestRandomizedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := graph.SimpleSchema(true)
	b := graph.NewBatch(s)
	n := 200
	for i := 0; i < n; i++ {
		b.AddVertex(0, int64(i*3)) // sparse external IDs
	}
	type pair struct{ u, v int64 }
	outDeg := map[int64]int{}
	m := 1500
	for i := 0; i < m; i++ {
		u, v := int64(r.Intn(n)*3), int64(r.Intn(n)*3)
		b.AddEdge(0, u, v, graph.FloatValue(r.Float64()))
		outDeg[u]++
	}
	st, err := Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEdges() != m {
		t.Fatalf("edges %d", st.NumEdges())
	}
	for ext, d := range outDeg {
		vid, ok := st.LookupVertex(0, ext)
		if !ok {
			t.Fatalf("vertex %d missing", ext)
		}
		if st.Degree(vid, graph.Out) != d {
			t.Fatalf("degree mismatch for %d: %d != %d", ext, st.Degree(vid, graph.Out), d)
		}
		if st.ExternalID(vid) != ext {
			t.Fatal("ext id round trip")
		}
	}
	_ = pair{}
}
