// Package vineyard implements the immutable in-memory property graph store
// (§4.2). Mirroring the paper's Vineyard backend, it keeps CSR and CSC
// representations of the topology, assigns internal vertex IDs so that each
// label occupies a contiguous range, and stores properties in typed columns.
// It implements every read-side GRIN trait, making it the fastest backend in
// Exp-1 (Fig 7a).
package vineyard

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/storage/column"
)

// Store is an immutable in-memory labeled property graph.
type Store struct {
	schema *graph.Schema

	// Vertices: internal IDs are assigned per label contiguously;
	// labelStart[l]..labelStart[l+1] is label l's range.
	labelStart []graph.VID
	extIDs     []int64
	extLookup  []map[int64]graph.VID // per label
	vcols      [][]*column.Column    // [label][prop]

	// Edges: global out-CSR and in-CSR over internal IDs. EIDs are assigned
	// in out-CSR slot order.
	outOff  []uint64
	out     []grin.Target
	inOff   []uint64
	in      []grin.Target
	elabels []graph.LabelID
	erow    []uint32           // row of each EID within its label's columns
	ecols   [][]*column.Column // [elabel][prop]

	// weightCol caches, per edge label, the float column named "weight"
	// (nil when absent) for the WeightReader fast path.
	weightCol []*column.Column
}

// Compile-time trait conformance.
var (
	_ grin.Graph          = (*Store)(nil)
	_ grin.AdjArray       = (*Store)(nil)
	_ grin.PropertyReader = (*Store)(nil)
	_ grin.WeightReader   = (*Store)(nil)
	_ grin.Index          = (*Store)(nil)
	_ grin.PredicatePush  = (*Store)(nil)
	_ grin.Named          = (*Store)(nil)
)

// Load builds a Store from a batch. The batch is sorted for deterministic ID
// assignment; dangling edges are an error.
func Load(b *graph.Batch) (*Store, error) {
	s := b.Schema
	if s == nil {
		return nil, fmt.Errorf("vineyard: batch has no schema")
	}
	st := &Store{schema: s}
	numVL := s.NumVertexLabels()
	numEL := s.NumEdgeLabels()

	// Assign internal IDs: stable sort by (label, extID).
	vs := make([]graph.VertexRecord, len(b.Vertices))
	copy(vs, b.Vertices)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Label != vs[j].Label {
			return vs[i].Label < vs[j].Label
		}
		return vs[i].ExtID < vs[j].ExtID
	})
	n := len(vs)
	st.labelStart = make([]graph.VID, numVL+1)
	st.extIDs = make([]int64, n)
	st.extLookup = make([]map[int64]graph.VID, numVL)
	st.vcols = make([][]*column.Column, numVL)
	for l := 0; l < numVL; l++ {
		st.extLookup[l] = make(map[int64]graph.VID)
		st.vcols[l] = column.Set(s.Vertices[l].Props)
	}
	cur := graph.LabelID(0)
	for i, v := range vs {
		for cur < v.Label {
			cur++
			st.labelStart[cur] = graph.VID(i)
		}
		vid := graph.VID(i)
		st.extIDs[i] = v.ExtID
		if _, dup := st.extLookup[v.Label][v.ExtID]; dup {
			return nil, fmt.Errorf("vineyard: duplicate vertex %s/%d", s.VertexLabelName(v.Label), v.ExtID)
		}
		st.extLookup[v.Label][v.ExtID] = vid
		if err := column.AppendRow(st.vcols[v.Label], v.Props); err != nil {
			return nil, fmt.Errorf("vineyard: vertex %s/%d: %w", s.VertexLabelName(v.Label), v.ExtID, err)
		}
	}
	for int(cur) < numVL {
		cur++
		st.labelStart[cur] = graph.VID(n)
	}

	// Resolve edge endpoints to internal IDs.
	type resolved struct {
		src, dst graph.VID
		label    graph.LabelID
		props    []graph.Value
	}
	res := make([]resolved, 0, len(b.Edges))
	for i, e := range b.Edges {
		el := s.Edges[e.Label]
		src, ok := st.lookupEndpoint(el.Src, e.Src)
		if !ok {
			return nil, fmt.Errorf("vineyard: edge %d (%s): unknown source %d", i, el.Name, e.Src)
		}
		dst, ok := st.lookupEndpoint(el.Dst, e.Dst)
		if !ok {
			return nil, fmt.Errorf("vineyard: edge %d (%s): unknown destination %d", i, el.Name, e.Dst)
		}
		res = append(res, resolved{src: src, dst: dst, label: e.Label, props: e.Props})
	}
	// Deterministic edge order: by (src, label, dst).
	sort.Slice(res, func(i, j int) bool {
		if res[i].src != res[j].src {
			return res[i].src < res[j].src
		}
		if res[i].label != res[j].label {
			return res[i].label < res[j].label
		}
		return res[i].dst < res[j].dst
	})

	m := len(res)
	st.outOff = make([]uint64, n+1)
	for _, e := range res {
		st.outOff[e.src+1]++
	}
	for i := 0; i < n; i++ {
		st.outOff[i+1] += st.outOff[i]
	}
	st.out = make([]grin.Target, m)
	st.elabels = make([]graph.LabelID, m)
	st.erow = make([]uint32, m)
	st.ecols = make([][]*column.Column, numEL)
	for l := 0; l < numEL; l++ {
		st.ecols[l] = column.Set(s.Edges[l].Props)
	}
	cursor := make([]uint64, n)
	copy(cursor, st.outOff[:n])
	for _, e := range res {
		slot := cursor[e.src]
		cursor[e.src]++
		eid := graph.EID(slot)
		st.out[slot] = grin.Target{Nbr: e.dst, Edge: eid}
		st.elabels[slot] = e.label
		if cols := st.ecols[e.label]; len(cols) > 0 {
			st.erow[slot] = uint32(cols[0].Len())
			if err := column.AppendRow(cols, e.props); err != nil {
				return nil, fmt.Errorf("vineyard: edge %s: %w", s.Edges[e.label].Name, err)
			}
		}
	}

	// CSC.
	st.inOff = make([]uint64, n+1)
	for _, t := range st.out {
		st.inOff[t.Nbr+1]++
	}
	for i := 0; i < n; i++ {
		st.inOff[i+1] += st.inOff[i]
	}
	st.in = make([]grin.Target, m)
	copy(cursor, st.inOff[:n])
	for v := 0; v < n; v++ {
		for _, t := range st.out[st.outOff[v]:st.outOff[v+1]] {
			slot := cursor[t.Nbr]
			cursor[t.Nbr]++
			st.in[slot] = grin.Target{Nbr: graph.VID(v), Edge: t.Edge}
		}
	}

	// Weight fast path.
	st.weightCol = make([]*column.Column, numEL)
	for l := 0; l < numEL; l++ {
		if p := s.EdgePropID(graph.LabelID(l), "weight"); p != graph.NoProp &&
			s.Edges[l].Props[p].Kind == graph.KindFloat {
			st.weightCol[l] = st.ecols[l][p]
		}
	}
	return st, nil
}

func (st *Store) lookupEndpoint(label graph.LabelID, ext int64) (graph.VID, bool) {
	if label != graph.AnyLabel {
		v, ok := st.extLookup[label][ext]
		return v, ok
	}
	for _, m := range st.extLookup {
		if v, ok := m[ext]; ok {
			return v, true
		}
	}
	return graph.NilVID, false
}

// BackendName implements grin.Named.
func (st *Store) BackendName() string { return "vineyard" }

// NumVertices implements grin.Graph.
func (st *Store) NumVertices() int { return len(st.extIDs) }

// NumEdges implements grin.Graph.
func (st *Store) NumEdges() int { return len(st.out) }

// Degree implements grin.Graph.
func (st *Store) Degree(v graph.VID, dir graph.Direction) int {
	switch dir {
	case graph.Out:
		return int(st.outOff[v+1] - st.outOff[v])
	case graph.In:
		return int(st.inOff[v+1] - st.inOff[v])
	default:
		return st.Degree(v, graph.Out) + st.Degree(v, graph.In)
	}
}

// AdjSlice implements grin.AdjArray (zero copy).
func (st *Store) AdjSlice(v graph.VID, dir graph.Direction) []grin.Target {
	if dir == graph.In {
		return st.in[st.inOff[v]:st.inOff[v+1]]
	}
	return st.out[st.outOff[v]:st.outOff[v+1]]
}

// Neighbors implements grin.Graph.
func (st *Store) Neighbors(v graph.VID, dir graph.Direction, yield func(graph.VID, graph.EID) bool) {
	if dir == graph.Both {
		st.Neighbors(v, graph.Out, yield)
		st.Neighbors(v, graph.In, yield)
		return
	}
	for _, t := range st.AdjSlice(v, dir) {
		if !yield(t.Nbr, t.Edge) {
			return
		}
	}
}

// Schema implements grin.PropertyReader.
func (st *Store) Schema() *graph.Schema { return st.schema }

// VertexLabel implements grin.PropertyReader using the label ranges.
func (st *Store) VertexLabel(v graph.VID) graph.LabelID {
	// labelStart is small (few labels); linear probe beats binary search.
	for l := 1; l < len(st.labelStart); l++ {
		if v < st.labelStart[l] {
			return graph.LabelID(l - 1)
		}
	}
	return graph.LabelID(len(st.labelStart) - 2)
}

// VertexProp implements grin.PropertyReader.
func (st *Store) VertexProp(v graph.VID, p graph.PropID) (graph.Value, bool) {
	l := st.VertexLabel(v)
	cols := st.vcols[l]
	if int(p) < 0 || int(p) >= len(cols) {
		return graph.NullValue, false
	}
	return cols[p].Get(int(v - st.labelStart[l]))
}

// EdgeLabel implements grin.PropertyReader.
func (st *Store) EdgeLabel(e graph.EID) graph.LabelID { return st.elabels[e] }

// EdgeProp implements grin.PropertyReader.
func (st *Store) EdgeProp(e graph.EID, p graph.PropID) (graph.Value, bool) {
	l := st.elabels[e]
	cols := st.ecols[l]
	if int(p) < 0 || int(p) >= len(cols) {
		return graph.NullValue, false
	}
	return cols[p].Get(int(st.erow[e]))
}

// EdgeWeight implements grin.WeightReader: the float property named "weight"
// of the edge's label, defaulting to 1.
func (st *Store) EdgeWeight(e graph.EID) float64 {
	wc := st.weightCol[st.elabels[e]]
	if wc == nil {
		return 1.0
	}
	return wc.Floats()[st.erow[e]]
}

// LookupVertex implements grin.Index.
func (st *Store) LookupVertex(label graph.LabelID, ext int64) (graph.VID, bool) {
	return st.lookupEndpoint(label, ext)
}

// ExternalID implements grin.Index.
func (st *Store) ExternalID(v graph.VID) int64 { return st.extIDs[v] }

// LabelRange implements grin.Index; vineyard's contiguous assignment always
// provides ranges.
func (st *Store) LabelRange(label graph.LabelID) (graph.VID, graph.VID, bool) {
	if label == graph.AnyLabel {
		return 0, graph.VID(len(st.extIDs)), true
	}
	if int(label) < 0 || int(label) >= st.schema.NumVertexLabels() {
		return 0, 0, false
	}
	return st.labelStart[label], st.labelStart[label+1], true
}

// ScanVertices implements grin.PredicatePush.
func (st *Store) ScanVertices(label graph.LabelID, pred func(graph.VID) bool, yield func(graph.VID) bool) {
	lo, hi, _ := st.LabelRange(label)
	for v := lo; v < hi; v++ {
		if pred != nil && !pred(v) {
			continue
		}
		if !yield(v) {
			return
		}
	}
}
