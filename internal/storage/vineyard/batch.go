package vineyard

import (
	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/storage/column"
)

var (
	_ grin.BatchAdjacency = (*Store)(nil)
	_ grin.BatchProps     = (*Store)(nil)
	_ grin.BatchPropsCol  = (*Store)(nil)
	_ grin.BatchScan      = (*Store)(nil)
)

// ExpandBatch implements grin.BatchAdjacency by slicing the CSR/CSC offset
// arrays directly: the arrays are sized once from the offset deltas and each
// frontier vertex contributes one contiguous copy per direction.
func (st *Store) ExpandBatch(frontier []graph.VID, dir graph.Direction, out *grin.AdjBatch) {
	grin.ExpandCSROffsets(frontier, dir, out, st.outOff, st.out, st.inOff, st.in)
}

// ScanBatch implements grin.BatchScan by filling straight from the label's
// contiguous ID range.
func (st *Store) ScanBatch(label graph.LabelID, start graph.VID, buf []graph.VID) (int, graph.VID) {
	lo, hi, ok := st.LabelRange(label)
	if !ok {
		return 0, graph.NilVID
	}
	if start < lo {
		start = lo
	}
	return grin.FillRange(start, hi, buf)
}

// GatherVertexProp implements grin.BatchProps: label-contiguous runs of the
// input resolve the property column once and gather through the column's
// typed payload (column.Gather), skipping the per-value label probe and
// interface dispatch of the scalar path.
func (st *Store) GatherVertexProp(vs []graph.VID, prop string, out []graph.Value) {
	var rows []int
	for i := 0; i < len(vs); {
		if vs[i] == graph.NilVID {
			out[i] = graph.NullValue
			i++
			continue
		}
		l := st.VertexLabel(vs[i])
		// Extend the run while the label stays the same.
		lo, hi := st.labelStart[l], st.labelEnd(l)
		j := i + 1
		for j < len(vs) && vs[j] != graph.NilVID && vs[j] >= lo && vs[j] < hi {
			j++
		}
		pid := st.schema.VertexPropID(l, prop)
		if pid == graph.NoProp {
			for k := i; k < j; k++ {
				out[k] = graph.NullValue
			}
			i = j
			continue
		}
		if cap(rows) < j-i {
			rows = make([]int, j-i)
		}
		rows = rows[:j-i]
		for k := i; k < j; k++ {
			rows[k-i] = int(vs[k] - lo)
		}
		st.vcols[l][pid].Gather(rows, out[i:j])
		i = j
	}
}

// labelEnd returns the exclusive end of a label's contiguous ID range.
func (st *Store) labelEnd(l graph.LabelID) graph.VID {
	if int(l)+1 < len(st.labelStart) {
		return st.labelStart[l+1]
	}
	return graph.VID(len(st.extIDs))
}

// GatherEdgeProp implements grin.BatchProps; label runs gather through the
// edge label's typed column.
func (st *Store) GatherEdgeProp(es []graph.EID, prop string, out []graph.Value) {
	var rows []int
	for i := 0; i < len(es); {
		if es[i] == graph.NilEID {
			out[i] = graph.NullValue
			i++
			continue
		}
		l := st.elabels[es[i]]
		j := i + 1
		for j < len(es) && es[j] != graph.NilEID && st.elabels[es[j]] == l {
			j++
		}
		pid := st.schema.EdgePropID(l, prop)
		if pid == graph.NoProp {
			for k := i; k < j; k++ {
				out[k] = graph.NullValue
			}
			i = j
			continue
		}
		if cap(rows) < j-i {
			rows = make([]int, j-i)
		}
		rows = rows[:j-i]
		for k := i; k < j; k++ {
			rows[k-i] = int(st.erow[es[k]])
		}
		st.ecols[l][pid].Gather(rows, out[i:j])
		i = j
	}
}

// GatherVertexPropCol implements grin.BatchPropsCol: the same label-run walk
// as GatherVertexProp, but each run gather-appends the store column's typed
// payload straight into dst via column.AppendRows — no graph.Value box in
// between. Any kind mismatch restores dst to its entry length and returns
// false so the caller falls back to the boxed gather.
func (st *Store) GatherVertexPropCol(vs []graph.VID, prop string, dst *column.Column) bool {
	start := dst.Len()
	var rows []int32
	for i := 0; i < len(vs); {
		if vs[i] == graph.NilVID {
			dst.AppendNull()
			i++
			continue
		}
		l := st.VertexLabel(vs[i])
		lo, hi := st.labelStart[l], st.labelEnd(l)
		j := i + 1
		for j < len(vs) && vs[j] != graph.NilVID && vs[j] >= lo && vs[j] < hi {
			j++
		}
		pid := st.schema.VertexPropID(l, prop)
		if pid == graph.NoProp {
			for k := i; k < j; k++ {
				dst.AppendNull()
			}
			i = j
			continue
		}
		if cap(rows) < j-i {
			rows = make([]int32, j-i)
		}
		rows = rows[:j-i]
		for k := i; k < j; k++ {
			rows[k-i] = int32(vs[k] - lo)
		}
		if err := dst.AppendRows(st.vcols[l][pid], rows); err != nil {
			dst.Truncate(start)
			return false
		}
		i = j
	}
	return true
}

// GatherEdgePropCol is GatherVertexPropCol for edge columns, mapping EIDs
// through the store's per-edge row index.
func (st *Store) GatherEdgePropCol(es []graph.EID, prop string, dst *column.Column) bool {
	start := dst.Len()
	var rows []int32
	for i := 0; i < len(es); {
		if es[i] == graph.NilEID {
			dst.AppendNull()
			i++
			continue
		}
		l := st.elabels[es[i]]
		j := i + 1
		for j < len(es) && es[j] != graph.NilEID && st.elabels[es[j]] == l {
			j++
		}
		pid := st.schema.EdgePropID(l, prop)
		if pid == graph.NoProp {
			for k := i; k < j; k++ {
				dst.AppendNull()
			}
			i = j
			continue
		}
		if cap(rows) < j-i {
			rows = make([]int32, j-i)
		}
		rows = rows[:j-i]
		for k := i; k < j; k++ {
			rows[k-i] = int32(st.erow[es[k]])
		}
		if err := dst.AppendRows(st.ecols[l][pid], rows); err != nil {
			dst.Truncate(start)
			return false
		}
		i = j
	}
	return true
}

// GatherVertexLabels implements grin.BatchProps with a run-cached range
// probe.
func (st *Store) GatherVertexLabels(vs []graph.VID, out []graph.LabelID) {
	last, lo, hi := graph.AnyLabel, graph.NilVID, graph.NilVID
	for i, v := range vs {
		if v == graph.NilVID {
			out[i] = graph.AnyLabel
			continue
		}
		if last == graph.AnyLabel || v < lo || v >= hi {
			last = st.VertexLabel(v)
			lo, hi = st.labelStart[last], st.labelEnd(last)
		}
		out[i] = last
	}
}

// GatherEdgeLabels implements grin.BatchProps straight off the label array.
func (st *Store) GatherEdgeLabels(es []graph.EID, out []graph.LabelID) {
	for i, e := range es {
		if e == graph.NilEID {
			out[i] = graph.AnyLabel
			continue
		}
		out[i] = st.elabels[e]
	}
}
