package meter

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/query/obsv"
	"repro/internal/storage/livegraph"
	"repro/internal/storage/vineyard"
)

func loadVineyard(t *testing.T) grin.Graph {
	t.Helper()
	b := dataset.SNB(dataset.SNBOptions{Persons: 40, Seed: 3})
	st, err := vineyard.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTraitMaskingHonest pins the capability contract: the wrapper's Go
// method set covers every trait, but grin.Has must report exactly the inner
// store's capabilities — on a full-trait backend and on a topology-only one.
func TestTraitMaskingHonest(t *testing.T) {
	lg := livegraph.NewStore(8)
	if err := lg.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	for name, inner := range map[string]grin.Graph{"vineyard": loadVineyard(t), "livegraph": lg} {
		mg := Wrap(inner, nil)
		for _, tr := range grin.Traits(inner) {
			if !grin.Has(mg, tr) {
				t.Errorf("%s: wrapper hides trait %v the inner store has", name, tr)
			}
		}
		for tr := grin.Trait(0); int(tr) < 16; tr++ {
			if grin.Has(mg, tr) && !grin.Has(inner, tr) {
				t.Errorf("%s: wrapper advertises trait %v the inner store lacks", name, tr)
			}
		}
	}
}

// TestSiteCounting pins that each delegated call lands on its chaos-aligned
// site counter, and that uncounted metadata calls (NumVertices, Schema) stay
// out of the profile.
func TestSiteCounting(t *testing.T) {
	st := loadVineyard(t)
	stats := &obsv.StoreStats{}
	mg := Wrap(st, stats)

	mg.NumVertices()
	mg.Degree(0, graph.Out)
	mg.Degree(0, graph.In)
	mg.Neighbors(0, graph.Out, func(graph.VID, graph.EID) bool { return true })
	mg.AdjSlice(0, graph.Out)
	mg.VertexProp(0, 0)
	var out grin.AdjBatch
	mg.ExpandBatch([]graph.VID{0}, graph.Out, &out)
	buf := make([]graph.VID, 4)
	mg.ScanBatch(0, 0, buf)

	want := map[obsv.StoreSite]int64{
		obsv.StoreDegree:      2,
		obsv.StoreNeighbors:   1,
		obsv.StoreAdjSlice:    1,
		obsv.StoreVertexProp:  1,
		obsv.StoreExpandBatch: 1,
		obsv.StoreScanBatch:   1,
	}
	for site := obsv.StoreSite(0); site < obsv.NumStoreSites; site++ {
		if got := stats.Calls(site); got != want[site] {
			t.Errorf("site %v: %d calls, want %d", site, got, want[site])
		}
	}
	if got := mg.BackendName(); got != "meter(vineyard)" {
		t.Errorf("BackendName = %q", got)
	}
}

// TestNativeFlags pins the native/fallback regime recorded at wrap time: a
// full-trait backend is native everywhere, a topology-only one is native only
// where it really serves the trait.
func TestNativeFlags(t *testing.T) {
	vstats := Wrap(loadVineyard(t), nil).Stats()
	for site := obsv.StoreSite(0); site < obsv.NumStoreSites; site++ {
		if !vstats.Snapshot().Sites[site].Native {
			t.Errorf("vineyard site %v not native", site)
		}
	}

	lg := livegraph.NewStore(8)
	if err := lg.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	lsnap := Wrap(lg, nil).Stats().Snapshot()
	byName := map[string]obsv.StoreSiteSnapshot{}
	for _, s := range lsnap.Sites {
		byName[s.Site] = s
	}
	if !byName["Degree"].Native || !byName["Neighbors"].Native {
		t.Error("livegraph topology sites must be native")
	}
	if byName["VertexProp"].Native {
		t.Error("livegraph has no property reader; VertexProp cannot be native")
	}
	if byName["GatherVertexProp"].Native {
		t.Error("livegraph has no batch props; GatherVertexProp cannot be native")
	}
}

// versionedGraph lends the Versioned trait to any inner graph for the
// snapshot-sink test (no committed backend exposes Versioned on its query
// view; GART keeps it on the store handle).
type versionedGraph struct {
	grin.Graph
	ver uint64
}

func (v *versionedGraph) ReadVersion() uint64 { return v.ver }

func (v *versionedGraph) Snapshot(version uint64) grin.Graph { return v.Graph }

func (v *versionedGraph) HasTrait(t grin.Trait) bool {
	return t == grin.TraitVersioned || grin.Has(v.Graph, t)
}

// TestSnapshotSharesSink pins the versioned path: a metered store's Snapshot
// returns a metered view whose calls land in the same counter sink, so one
// profile covers the query's pinned read view.
func TestSnapshotSharesSink(t *testing.T) {
	mg := Wrap(&versionedGraph{Graph: loadVineyard(t), ver: 7}, nil)
	vers, ok := grin.AsVersioned(mg)
	if !ok {
		t.Fatal("metered store lost the Versioned trait")
	}
	snap := vers.Snapshot(vers.ReadVersion())
	msnap, ok := snap.(*Graph)
	if !ok {
		t.Fatalf("Snapshot returned %T, want a metered *Graph", snap)
	}
	if msnap.Stats() != mg.Stats() {
		t.Fatal("snapshot does not share the wrapper's stats sink")
	}
	before := mg.Stats().Calls(obsv.StoreDegree)
	msnap.Degree(0, graph.Out)
	if mg.Stats().Calls(obsv.StoreDegree) != before+1 {
		t.Fatal("snapshot call did not land in the shared sink")
	}
}
