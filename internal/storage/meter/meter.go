// Package meter is the instrumenting storage backend: a GRIN wrapper over
// any inner backend that delegates every trait call and counts the calls per
// site into an obsv.StoreStats. It is chaos's benign sibling — the same 15
// call sites internal/storage/chaos enumerates for fault injection, counted
// instead of sabotaged — so a fault schedule and a call profile always talk
// about the same surface.
//
// Like chaos, the wrapper's Go method set covers every GRIN trait regardless
// of what the inner store supports; HasTrait masks it down to the inner
// store's real capability set, so capability discovery through grin.Has and
// grin.As* stays honest. That masking is what makes fallback-vs-native
// observable: when the inner backend lacks a batch trait, grin's generic
// helpers take the scalar fallback *through the wrapper*, and the scalar
// site counters (Neighbors, VertexProp, ...) rise where a native backend
// would show batch calls (ExpandBatch, GatherVertexProp, ...). The
// StoreStats native flags record which regime each site was in.
//
// Counting is one atomic add per call with no locks and no maps, so a
// metered query stays safe for the engines' full parallelism and the counts
// merge deterministically regardless of worker schedule.
package meter

import (
	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/query/obsv"
)

// Graph wraps an inner GRIN backend with call counting. Safe for concurrent
// use to the same degree the inner store is: the stats sink is atomic.
type Graph struct {
	inner grin.Graph
	stats *obsv.StoreStats

	// Pre-asserted optional traits of the inner store; nil when absent.
	// HasTrait masks the wrapper's method set down to what is non-nil.
	adj   grin.AdjArray
	props grin.PropertyReader
	wts   grin.WeightReader
	idx   grin.Index
	pred  grin.PredicatePush
	part  grin.Partitioned
	vers  grin.Versioned
	badj  grin.BatchAdjacency
	bprop grin.BatchProps
	bscan grin.BatchScan
}

// Wrap builds a metering view of inner counting into stats. A nil stats gets
// a fresh sink (read it back via Stats). Wrap also records the backend name
// and the native/fallback regime of every site into the sink.
func Wrap(inner grin.Graph, stats *obsv.StoreStats) *Graph {
	if stats == nil {
		stats = &obsv.StoreStats{}
	}
	g := &Graph{inner: inner, stats: stats}
	g.bind(inner)
	name := "unknown"
	if n, ok := inner.(grin.Named); ok {
		name = n.BackendName()
	}
	stats.SetBackend(name)
	stats.SetNative(obsv.StoreDegree, true)
	stats.SetNative(obsv.StoreNeighbors, true)
	stats.SetNative(obsv.StoreAdjSlice, g.adj != nil)
	stats.SetNative(obsv.StoreVertexProp, g.props != nil)
	stats.SetNative(obsv.StoreEdgeProp, g.props != nil)
	stats.SetNative(obsv.StoreEdgeWeight, g.wts != nil)
	stats.SetNative(obsv.StoreLookupVertex, g.idx != nil)
	stats.SetNative(obsv.StoreLabelRange, g.idx != nil)
	stats.SetNative(obsv.StoreScanVertices, g.pred != nil)
	stats.SetNative(obsv.StoreExpandBatch, g.badj != nil)
	stats.SetNative(obsv.StoreGatherVProp, g.bprop != nil)
	stats.SetNative(obsv.StoreGatherEProp, g.bprop != nil)
	stats.SetNative(obsv.StoreGatherVLabels, g.bprop != nil)
	stats.SetNative(obsv.StoreGatherELabels, g.bprop != nil)
	stats.SetNative(obsv.StoreScanBatch, g.bscan != nil)
	return g
}

func (g *Graph) bind(inner grin.Graph) {
	g.adj, _ = grin.AsAdjArray(inner)
	g.props, _ = grin.AsPropertyReader(inner)
	g.wts, _ = grin.AsWeightReader(inner)
	g.idx, _ = grin.AsIndex(inner)
	g.pred, _ = grin.AsPredicatePush(inner)
	g.part, _ = grin.AsPartitioned(inner)
	g.vers, _ = grin.AsVersioned(inner)
	g.badj, _ = grin.AsBatchAdjacency(inner)
	g.bprop, _ = grin.AsBatchProps(inner)
	g.bscan, _ = grin.AsBatchScan(inner)
}

// Inner returns the wrapped store.
func (g *Graph) Inner() grin.Graph { return g.inner }

// Stats returns the counter sink.
func (g *Graph) Stats() *obsv.StoreStats { return g.stats }

// HasTrait reports the *inner* store's capability set (grin.TraitMasker):
// the wrapper type has every trait method, but only the traits the wrapped
// store really provides are advertised.
func (g *Graph) HasTrait(t grin.Trait) bool { return grin.Has(g.inner, t) }

// BackendName identifies the wrapper and its inner store in logs/manifests.
func (g *Graph) BackendName() string {
	name := "unknown"
	if n, ok := g.inner.(grin.Named); ok {
		name = n.BackendName()
	}
	return "meter(" + name + ")"
}

// Graph (topology) — always present.

// NumVertices delegates (O(1) metadata; not a counted site, matching chaos).
func (g *Graph) NumVertices() int { return g.inner.NumVertices() }

// NumEdges delegates.
func (g *Graph) NumEdges() int { return g.inner.NumEdges() }

// Degree delegates with counting.
func (g *Graph) Degree(v graph.VID, dir graph.Direction) int {
	g.stats.Count(obsv.StoreDegree)
	return g.inner.Degree(v, dir)
}

// Neighbors delegates with counting.
func (g *Graph) Neighbors(v graph.VID, dir graph.Direction, yield func(graph.VID, graph.EID) bool) {
	g.stats.Count(obsv.StoreNeighbors)
	g.inner.Neighbors(v, dir, yield)
}

// AdjArray.

// AdjSlice delegates with counting.
func (g *Graph) AdjSlice(v graph.VID, dir graph.Direction) []grin.Target {
	g.stats.Count(obsv.StoreAdjSlice)
	return g.adj.AdjSlice(v, dir)
}

// PropertyReader.

// Schema delegates (metadata; not a counted site).
func (g *Graph) Schema() *graph.Schema { return g.props.Schema() }

// VertexLabel delegates (label reads cannot take an independent slow path).
func (g *Graph) VertexLabel(v graph.VID) graph.LabelID { return g.props.VertexLabel(v) }

// VertexProp delegates with counting.
func (g *Graph) VertexProp(v graph.VID, p graph.PropID) (graph.Value, bool) {
	g.stats.Count(obsv.StoreVertexProp)
	return g.props.VertexProp(v, p)
}

// EdgeLabel delegates.
func (g *Graph) EdgeLabel(e graph.EID) graph.LabelID { return g.props.EdgeLabel(e) }

// EdgeProp delegates with counting.
func (g *Graph) EdgeProp(e graph.EID, p graph.PropID) (graph.Value, bool) {
	g.stats.Count(obsv.StoreEdgeProp)
	return g.props.EdgeProp(e, p)
}

// WeightReader.

// EdgeWeight delegates with counting.
func (g *Graph) EdgeWeight(e graph.EID) float64 {
	g.stats.Count(obsv.StoreEdgeWeight)
	return g.wts.EdgeWeight(e)
}

// Index.

// LookupVertex delegates with counting.
func (g *Graph) LookupVertex(label graph.LabelID, extID int64) (graph.VID, bool) {
	g.stats.Count(obsv.StoreLookupVertex)
	return g.idx.LookupVertex(label, extID)
}

// ExternalID delegates.
func (g *Graph) ExternalID(v graph.VID) int64 { return g.idx.ExternalID(v) }

// LabelRange delegates with counting.
func (g *Graph) LabelRange(label graph.LabelID) (lo, hi graph.VID, ok bool) {
	g.stats.Count(obsv.StoreLabelRange)
	return g.idx.LabelRange(label)
}

// PredicatePush.

// ScanVertices delegates with counting.
func (g *Graph) ScanVertices(label graph.LabelID, pred func(graph.VID) bool, yield func(graph.VID) bool) {
	g.stats.Count(obsv.StoreScanVertices)
	g.pred.ScanVertices(label, pred, yield)
}

// Partitioned.

// Fragment delegates.
func (g *Graph) Fragment() (id, total int) { return g.part.Fragment() }

// IsInner delegates.
func (g *Graph) IsInner(v graph.VID) bool { return g.part.IsInner(v) }

// Owner delegates.
func (g *Graph) Owner(v graph.VID) int { return g.part.Owner(v) }

// GlobalID delegates.
func (g *Graph) GlobalID(v graph.VID) graph.VID { return g.part.GlobalID(v) }

// Versioned.

// ReadVersion delegates.
func (g *Graph) ReadVersion() uint64 { return g.vers.ReadVersion() }

// Snapshot meters the snapshot too, sharing this wrapper's counter sink:
// the calls a query makes against its pinned view land in the same profile.
func (g *Graph) Snapshot(version uint64) grin.Graph {
	snap := g.vers.Snapshot(version)
	ng := &Graph{inner: snap, stats: g.stats}
	ng.bind(snap)
	return ng
}

// Batch traits.

// ExpandBatch delegates with counting.
func (g *Graph) ExpandBatch(frontier []graph.VID, dir graph.Direction, out *grin.AdjBatch) {
	g.stats.Count(obsv.StoreExpandBatch)
	g.badj.ExpandBatch(frontier, dir, out)
}

// GatherVertexProp delegates with counting.
func (g *Graph) GatherVertexProp(vs []graph.VID, prop string, out []graph.Value) {
	g.stats.Count(obsv.StoreGatherVProp)
	g.bprop.GatherVertexProp(vs, prop, out)
}

// GatherEdgeProp delegates with counting.
func (g *Graph) GatherEdgeProp(es []graph.EID, prop string, out []graph.Value) {
	g.stats.Count(obsv.StoreGatherEProp)
	g.bprop.GatherEdgeProp(es, prop, out)
}

// GatherVertexLabels delegates with counting.
func (g *Graph) GatherVertexLabels(vs []graph.VID, out []graph.LabelID) {
	g.stats.Count(obsv.StoreGatherVLabels)
	g.bprop.GatherVertexLabels(vs, out)
}

// GatherEdgeLabels delegates with counting.
func (g *Graph) GatherEdgeLabels(es []graph.EID, out []graph.LabelID) {
	g.stats.Count(obsv.StoreGatherELabels)
	g.bprop.GatherEdgeLabels(es, out)
}

// ScanBatch delegates with counting.
func (g *Graph) ScanBatch(label graph.LabelID, start graph.VID, buf []graph.VID) (int, graph.VID) {
	g.stats.Count(obsv.StoreScanBatch)
	return g.bscan.ScanBatch(label, start, buf)
}
