package retry_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/retry"
)

// flaky is a transient error for n failures, then success.
type flaky struct{ fails, calls int }

type transientErr struct{ n int }

func (e *transientErr) Error() string   { return fmt.Sprintf("transient failure %d", e.n) }
func (e *transientErr) Transient() bool { return true }

func (f *flaky) op() error {
	f.calls++
	if f.calls <= f.fails {
		return &transientErr{n: f.calls}
	}
	return nil
}

func TestRetriesTransientUntilSuccess(t *testing.T) {
	f := &flaky{fails: 2}
	err := retry.Do(context.Background(), retry.Policy{Attempts: 4, BaseDelay: time.Microsecond}, f.op)
	if err != nil {
		t.Fatalf("Do = %v, want success after retries", err)
	}
	if f.calls != 3 {
		t.Errorf("op ran %d times, want 3 (2 transient failures + 1 success)", f.calls)
	}
}

func TestExhaustedAttemptsReturnLastError(t *testing.T) {
	f := &flaky{fails: 10}
	err := retry.Do(context.Background(), retry.Policy{Attempts: 3, BaseDelay: time.Microsecond}, f.op)
	var te *transientErr
	if !errors.As(err, &te) || te.n != 3 {
		t.Fatalf("Do = %v, want the 3rd transient error", err)
	}
	if f.calls != 3 {
		t.Errorf("op ran %d times, want exactly Attempts", f.calls)
	}
}

func TestNonTransientFailsImmediately(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := retry.Do(context.Background(), retry.Policy{Attempts: 5, BaseDelay: time.Microsecond}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("Do = %v, want the permanent error", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (no retry of non-transient errors)", calls)
	}
}

// TestTransientSeesWrappedErrors pins the structural detection through wrap
// chains — the exec layer rewraps chaos errors with stage context.
func TestTransientSeesWrappedErrors(t *testing.T) {
	wrapped := fmt.Errorf("exec: stage SCAN: %w", &transientErr{n: 1})
	if !retry.Transient(wrapped) {
		t.Error("Transient missed a wrapped transient error")
	}
	if retry.Transient(errors.New("plain")) {
		t.Error("Transient matched a plain error")
	}
	if retry.Transient(nil) {
		t.Error("Transient matched nil")
	}
}

func TestContextCancelStopsBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := retry.Do(ctx, retry.Policy{Attempts: 5, BaseDelay: time.Hour}, func() error {
		calls++
		return &transientErr{n: calls}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls > 1 {
		t.Errorf("op ran %d times under a canceled context, want at most 1", calls)
	}
}

// TestJitterIsSeeded pins determinism: the retry loop with a fixed seed is
// reproducible — same seed, same behavior (verified indirectly: the jitter
// stream cannot make delays exceed the doubling bound, and the loop
// completes within the deterministic schedule's total).
func TestJitterIsSeeded(t *testing.T) {
	f := &flaky{fails: 3}
	start := time.Now()
	err := retry.Do(context.Background(), retry.Policy{
		Attempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 99,
	}, f.op)
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	// Backoffs are at most 1+2+2 ms; anything wildly above means the jitter
	// escaped its [delay/2, delay] bound.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("retries took %v, want bounded backoff", elapsed)
	}
}
