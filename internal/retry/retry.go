// Package retry is the bounded-backoff layer over transient query failures:
// a fault the chaos backend (or, in the distributed deployment, a
// remote-fragment RPC) marks transient is worth re-running the query for,
// while deadline, cancellation, budget and plain evaluation errors are not.
// Backoff is exponential with deterministic seeded jitter (no math/rand, so
// a test run's exact sleep schedule reproduces from its seed) and every wait
// respects the caller's context: a deadline firing mid-backoff surfaces
// immediately with the context's error, never after a stale sleep.
package retry

import (
	"context"
	"errors"
	"time"
)

// transient is the structural marker retryable errors implement — the chaos
// backend's *Error does, with Transient() reporting whether the injected
// kind was transient. Structural typing keeps this package free of storage
// imports, mirroring exec's ChaosInjected test.
type transient interface {
	error
	Transient() bool
}

// Transient reports whether err (anywhere in its wrap chain) is marked
// transient.
func Transient(err error) bool {
	var t transient
	return errors.As(err, &t) && t.Transient()
}

// Policy bounds a retry loop.
type Policy struct {
	// Attempts is the total tries, first included (0 or 1: no retrying).
	Attempts int
	// BaseDelay is the backoff before the first retry; each subsequent retry
	// doubles it (0: 1ms).
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff (0: 100ms).
	MaxDelay time.Duration
	// Seed drives the jitter stream; the same seed yields the same delays.
	Seed int64
}

// splitmix64 advances state and returns the next value of the jitter stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Do runs op up to p.Attempts times, retrying only errors Transient reports
// retryable, with exponential backoff and seeded full jitter between tries.
// A context that fires before or during a backoff wait ends the loop with
// ctx.Err(); a non-transient error ends it immediately with that error.
func Do(ctx context.Context, p Policy, op func() error) error {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	state := uint64(p.Seed)
	delay := p.BaseDelay
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			// Full jitter in [delay/2, delay]: enough spread to de-correlate
			// concurrent retriers, bounded below so backoff still backs off.
			d := delay/2 + time.Duration(splitmix64(&state)%uint64(delay/2+1))
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
			if delay *= 2; delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = op(); err == nil || !Transient(err) {
			return err
		}
	}
	return err
}
