// Package parallel is the shared work-scheduling runtime used by the storage
// and analytics hot paths: chunked parallel-for over vertex/edge index
// ranges, worker counts sized by the host CPU, and per-worker partial results
// folded by an explicit merge step. It is deliberately tiny — contiguous
// static chunks for uniform work, an atomic cursor for skewed work — so that
// callers keep deterministic layouts (each worker owns a contiguous range and
// merges happen in worker order).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count for a loop over n items:
// requested <= 0 selects runtime.GOMAXPROCS(0), and the result is clamped to
// [1, n] so every worker owns a non-empty range (n == 0 yields 1; the loop
// body then simply never runs).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunk returns worker w's contiguous range [lo, hi) of [0, n) split into
// workers near-equal parts (the first n%workers chunks are one larger).
func chunk(n, workers, w int) (lo, hi int) {
	size := n / workers
	rem := n % workers
	lo = w*size + min(w, rem)
	hi = lo + size
	if w < rem {
		hi++
	}
	return lo, hi
}

// For splits [0, n) into one contiguous chunk per worker and runs body on
// each chunk concurrently. body receives the worker index and its [lo, hi)
// range; ranges are disjoint and cover [0, n) in order, so layouts produced
// by For are identical to the sequential loop. workers is resolved with
// Workers; a single worker runs inline on the caller's goroutine.
func For(n, workers int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunk(n, workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForDynamic schedules [0, n) in grain-sized chunks handed to workers from an
// atomic cursor — for skewed per-index costs (per-vertex adjacency sorts,
// triangle counting on power-law graphs) where static chunking load-
// imbalances. grain <= 0 picks n/(8*workers), clamped to at least 1. body
// receives the worker index (stable per goroutine, usable to index partial
// results) and a chunk range. Chunk-to-worker assignment is nondeterministic;
// callers must only perform order-independent work per index.
func ForDynamic(n, workers, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if grain <= 0 {
		grain = n / (8 * workers)
		if grain < 1 {
			grain = 1
		}
	}
	if workers == 1 {
		body(0, 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Reduce runs body over per-worker contiguous chunks of [0, n), each
// producing a partial result seeded with identity, then folds the partials
// into identity in worker order with merge. Because chunks and the merge
// order are deterministic, Reduce of an associative merge gives the same
// result for any worker count.
func Reduce[T any](n, workers int, identity T, body func(worker, lo, hi int, acc T) T, merge func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	workers = Workers(workers, n)
	if workers == 1 {
		return body(0, 0, n, identity)
	}
	partials := make([]T, workers)
	For(n, workers, func(w, lo, hi int) {
		partials[w] = body(w, lo, hi, identity)
	})
	acc := identity
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc
}

// ReduceDynamic is Reduce with ForDynamic's scheduling: grain-sized chunks
// from an atomic cursor feed per-worker accumulators (seeded with identity),
// which merge in worker order at the end. Chunk-to-worker assignment is
// nondeterministic, so the result is only deterministic for merges that are
// associative and commutative (sums, mins, counts) — use it where per-index
// cost is skewed and the reduction is order-independent.
func ReduceDynamic[T any](n, workers, grain int, identity T, body func(lo, hi int, acc T) T, merge func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	workers = Workers(workers, n)
	if workers == 1 {
		return body(0, n, identity)
	}
	partials := make([]T, workers)
	for w := range partials {
		partials[w] = identity
	}
	ForDynamic(n, workers, grain, func(w, lo, hi int) {
		partials[w] = body(lo, hi, partials[w])
	})
	acc := identity
	for _, p := range partials {
		acc = merge(acc, p)
	}
	return acc
}
