package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(0, 100); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(-3, 100); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3, 100) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3 (clamped to n)", w)
	}
	if w := Workers(8, 0); w != 1 {
		t.Fatalf("Workers(8, 0) = %d, want 1", w)
	}
	if w := Workers(4, 100); w != 4 {
		t.Fatalf("Workers(4, 100) = %d, want 4", w)
	}
}

func TestChunkCoversRangeDisjointly(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 65, 1000} {
		for _, workers := range []int{1, 2, 3, 7, 64} {
			if workers > n {
				continue
			}
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := chunk(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d w=%d/%d: gap/overlap at %d (lo=%d)", n, w, workers, prevHi, lo)
				}
				if hi < lo {
					t.Fatalf("n=%d w=%d/%d: inverted range [%d,%d)", n, w, workers, lo, hi)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: chunks cover [0,%d) not [0,%d)", n, workers, prevHi, n)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(0, 4, func(worker, lo, hi int) { called = true })
	if called {
		t.Fatal("For(0, ...) must not invoke body")
	}
	ForDynamic(0, 4, 1, func(worker, lo, hi int) { called = true })
	if called {
		t.Fatal("ForDynamic(0, ...) must not invoke body")
	}
}

func TestForFewerItemsThanWorkers(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	For(3, 16, func(worker, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			if seen[i] {
				t.Errorf("index %d visited twice", i)
			}
			seen[i] = true
		}
	})
	if len(seen) != 3 {
		t.Fatalf("visited %d indices, want 3", len(seen))
	}
}

// TestForWorkerOneEquivalence: workers=1 must produce the same visit sequence
// as a plain loop (inline, in order).
func TestForWorkerOneEquivalence(t *testing.T) {
	var order []int
	For(10, 1, func(worker, lo, hi int) {
		if worker != 0 || lo != 0 || hi != 10 {
			t.Fatalf("workers=1 got worker=%d [%d,%d)", worker, lo, hi)
		}
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, order)
		}
	}
}

func TestForCoversAllIndices(t *testing.T) {
	const n = 1237
	for _, workers := range []int{1, 2, 5, 16} {
		visited := make([]atomic.Int32, n)
		For(n, workers, func(worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				visited[i].Add(1)
			}
		})
		for i := range visited {
			if c := visited[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	const n = 999
	for _, workers := range []int{1, 3, 8} {
		for _, grain := range []int{0, 1, 7, 5000} {
			visited := make([]atomic.Int32, n)
			ForDynamic(n, workers, grain, func(worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					visited[i].Add(1)
				}
			})
			for i := range visited {
				if c := visited[i].Load(); c != 1 {
					t.Fatalf("workers=%d grain=%d: index %d visited %d times", workers, grain, i, c)
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	const n = 10000
	want := n * (n - 1) / 2
	for _, workers := range []int{1, 2, 3, 13} {
		got := Reduce(n, workers, 0, func(worker, lo, hi, acc int) int {
			for i := lo; i < hi; i++ {
				acc += i
			}
			return acc
		}, func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("workers=%d: sum=%d want %d", workers, got, want)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 4, 42, func(worker, lo, hi, acc int) int {
		t.Error("body must not run for n=0")
		return acc
	}, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("Reduce(0) = %d, want identity 42", got)
	}
}

func TestReduceDynamicSum(t *testing.T) {
	const n = 10000
	want := n * (n - 1) / 2
	for _, workers := range []int{1, 2, 3, 13} {
		for _, grain := range []int{0, 1, 64} {
			got := ReduceDynamic(n, workers, grain, 0, func(lo, hi, acc int) int {
				for i := lo; i < hi; i++ {
					acc += i
				}
				return acc
			}, func(a, b int) int { return a + b })
			if got != want {
				t.Fatalf("workers=%d grain=%d: sum=%d want %d", workers, grain, got, want)
			}
		}
	}
	got := ReduceDynamic(0, 4, 0, 7, func(lo, hi, acc int) int {
		t.Error("body must not run for n=0")
		return acc
	}, func(a, b int) int { return a + b })
	if got != 7 {
		t.Fatalf("ReduceDynamic(0) = %d, want identity 7", got)
	}
}

// TestReduceDeterministicMergeOrder: merge must fold partials in worker
// order, so a non-commutative merge observes chunks left to right.
func TestReduceDeterministicMergeOrder(t *testing.T) {
	const n = 100
	got := Reduce(n, 4, []int(nil), func(worker, lo, hi int, acc []int) []int {
		for i := lo; i < hi; i++ {
			acc = append(acc, i)
		}
		return acc
	}, func(a, b []int) []int { return append(a, b...) })
	if len(got) != n {
		t.Fatalf("len=%d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("merge order broken at %d: %d", i, v)
		}
	}
}
