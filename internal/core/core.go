package core
