// Package core is the composition layer of the stack — the paper's primary
// contribution (§3): a registry of LEGO-like components across the three
// layers, a flexbuild planner that validates a selection and emits a
// deployment plan, and a Session facade that wires selected components
// together over one storage backend.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/grin"
)

// Layer classifies components as in Fig 3.
type Layer string

// The three architectural layers.
const (
	LayerApplication Layer = "application"
	LayerEngine      Layer = "engine"
	LayerStorage     Layer = "storage"
)

// Component describes one brick: its layer, what it provides, and what it
// requires from the layers below (GRIN traits for engines, engine kinds for
// applications).
type Component struct {
	Name     string
	Layer    Layer
	Provides []string
	// RequiresTraits lists GRIN traits the component needs from the chosen
	// storage backend.
	RequiresTraits []grin.Trait
	// RequiresComponents lists other components that must be co-deployed.
	RequiresComponents []string
	Doc                string
}

// Registry is the component catalog of this build.
var Registry = []Component{
	// Application layer.
	{Name: "sdk", Layer: LayerApplication, Provides: []string{"api"}, Doc: "Go SDK (this module's public packages)"},
	{Name: "restful", Layer: LayerApplication, Provides: []string{"api"}, RequiresComponents: []string{"hiactor"}, Doc: "RESTful endpoint adapter"},
	{Name: "gremlin", Layer: LayerApplication, Provides: []string{"query-language"}, RequiresComponents: []string{"compiler"}, Doc: "Gremlin traversal front-end"},
	{Name: "cypher", Layer: LayerApplication, Provides: []string{"query-language"}, RequiresComponents: []string{"compiler"}, Doc: "Cypher front-end"},
	{Name: "builtin-apps", Layer: LayerApplication, Provides: []string{"algorithms"}, RequiresComponents: []string{"grape"}, Doc: "Built-in analytics library (PageRank, BFS, SSSP, WCC, CDLP, k-core, triangles, equity)"},
	{Name: "gnn-models", Layer: LayerApplication, Provides: []string{"models"}, RequiresComponents: []string{"graphlearn"}, Doc: "GraphSAGE and NCN models"},

	// Engine layer.
	{Name: "compiler", Layer: LayerEngine, Provides: []string{"graphir"}, Doc: "GraphIR parser/optimizer/codegen (ir, optimizer, exec)"},
	{Name: "gaia", Layer: LayerEngine, Provides: []string{"olap"}, RequiresComponents: []string{"compiler"}, RequiresTraits: []grin.Trait{grin.TraitTopology, grin.TraitProperty}, Doc: "Dataflow engine for OLAP queries"},
	{Name: "hiactor", Layer: LayerEngine, Provides: []string{"oltp"}, RequiresComponents: []string{"compiler"}, RequiresTraits: []grin.Trait{grin.TraitTopology, grin.TraitProperty, grin.TraitIndex}, Doc: "Actor engine for high-QPS OLTP queries"},
	{Name: "grape", Layer: LayerEngine, Provides: []string{"analytics"}, RequiresTraits: []grin.Trait{grin.TraitTopology}, Doc: "PIE-model analytical engine (+Pregel, FLASH)"},
	{Name: "grape-gpu", Layer: LayerEngine, Provides: []string{"analytics-gpu"}, RequiresTraits: []grin.Trait{grin.TraitTopology, grin.TraitAdjArray}, Doc: "Simulated GPU analytics backend"},
	{Name: "obsv", Layer: LayerEngine, Provides: []string{"observability"}, RequiresComponents: []string{"compiler"}, Doc: "Query observability: per-stage runtime stats, EXPLAIN ANALYZE, trace export, store call metering"},
	{Name: "graphlearn", Layer: LayerEngine, Provides: []string{"learning"}, RequiresTraits: []grin.Trait{grin.TraitTopology}, Doc: "Decoupled sampling/training stack"},

	// Storage layer.
	{Name: "vineyard", Layer: LayerStorage, Provides: []string{"store"}, Doc: "Immutable in-memory CSR property store"},
	{Name: "gart", Layer: LayerStorage, Provides: []string{"store", "mvcc"}, Doc: "Dynamic MVCC store"},
	{Name: "graphar", Layer: LayerStorage, Provides: []string{"store", "archive"}, Doc: "Chunked columnar archive (direct GRIN source)"},
	{Name: "grin", Layer: LayerStorage, Provides: []string{"interface"}, Doc: "Unified graph retrieval interface"},
}

// storeTraits records which GRIN traits each backend provides (kept in sync
// with the backend packages; validated by tests).
var storeTraits = map[string][]grin.Trait{
	"vineyard": {grin.TraitTopology, grin.TraitAdjArray, grin.TraitProperty, grin.TraitWeight, grin.TraitIndex, grin.TraitPredicate},
	"gart":     {grin.TraitTopology, grin.TraitProperty, grin.TraitWeight, grin.TraitIndex, grin.TraitPredicate, grin.TraitVersioned},
	"graphar":  {grin.TraitTopology, grin.TraitProperty, grin.TraitWeight, grin.TraitIndex, grin.TraitPredicate},
}

// Find resolves a component by name.
func Find(name string) (Component, bool) {
	for _, c := range Registry {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// Plan is a validated deployment: the closed component set plus the chosen
// storage backend.
type Plan struct {
	Components []string
	Store      string
}

// Build validates a component selection (flexbuild §3): it closes the set
// over RequiresComponents, checks that exactly one store is selected, and
// verifies every engine's required GRIN traits against the store.
func Build(selection []string) (*Plan, error) {
	set := map[string]bool{"grin": true}
	var queue []string
	for _, name := range selection {
		queue = append(queue, name)
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if set[name] {
			continue
		}
		c, ok := Find(name)
		if !ok {
			return nil, fmt.Errorf("flexbuild: unknown component %q", name)
		}
		set[name] = true
		queue = append(queue, c.RequiresComponents...)
	}

	var store string
	for name := range set {
		if _, isStore := storeTraits[name]; isStore {
			if store != "" {
				return nil, fmt.Errorf("flexbuild: multiple stores selected (%s, %s)", store, name)
			}
			store = name
		}
	}
	if store == "" {
		return nil, fmt.Errorf("flexbuild: no storage backend selected (pick one of vineyard, gart, graphar)")
	}

	// Trait compatibility: every engine's requirements against the store.
	have := map[grin.Trait]bool{}
	for _, t := range storeTraits[store] {
		have[t] = true
	}
	for name := range set {
		c, _ := Find(name)
		for _, t := range c.RequiresTraits {
			if !have[t] {
				return nil, fmt.Errorf("flexbuild: component %q requires trait %q which store %q does not provide", name, t, store)
			}
		}
	}

	plan := &Plan{Store: store}
	for name := range set {
		plan.Components = append(plan.Components, name)
	}
	sort.Strings(plan.Components)
	return plan, nil
}

// Manifest renders the plan as a deployment manifest.
func (p *Plan) Manifest() string {
	var b strings.Builder
	b.WriteString("# flexbuild deployment plan\n")
	fmt.Fprintf(&b, "store: %s\n", p.Store)
	b.WriteString("components:\n")
	for _, name := range p.Components {
		c, _ := Find(name)
		fmt.Fprintf(&b, "  - %s (%s): %s\n", name, c.Layer, c.Doc)
	}
	return b.String()
}

// Presets are the worked deployments of §3's real-world example.
var Presets = map[string][]string{
	// Workload 2 (anti-fraud analytics): SDK + builtin algorithms on GRAPE
	// over Vineyard.
	"analytics": {"sdk", "builtin-apps", "grape", "vineyard"},
	// Workload 5 (BI analysis): Cypher on Gaia over the GraphAr archive.
	"bi": {"restful", "cypher", "gaia", "graphar", "hiactor"},
	// Fraud detection OLTP: Cypher stored procedures on HiActor over GART.
	"oltp": {"sdk", "cypher", "hiactor", "gart"},
	// GNN training: models + learning stack over Vineyard.
	"learning": {"sdk", "gnn-models", "graphlearn", "vineyard"},
}
