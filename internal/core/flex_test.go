package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/grin"
	"repro/internal/storage/gart"
	"repro/internal/storage/vineyard"
)

func TestBuildPresets(t *testing.T) {
	for name, sel := range Presets {
		plan, err := Build(sel)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if plan.Store == "" {
			t.Fatalf("preset %s: no store", name)
		}
		m := plan.Manifest()
		if !strings.Contains(m, plan.Store) {
			t.Fatalf("preset %s: manifest missing store", name)
		}
	}
}

func TestBuildClosesDependencies(t *testing.T) {
	plan, err := Build([]string{"cypher", "gaia", "vineyard"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range plan.Components {
		if c == "compiler" {
			found = true
		}
	}
	if !found {
		t.Fatal("dependency closure missed the compiler")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]string{"nonsense"}); err == nil {
		t.Fatal("unknown component accepted")
	}
	if _, err := Build([]string{"gaia"}); err == nil {
		t.Fatal("store-less plan accepted")
	}
	if _, err := Build([]string{"gaia", "vineyard", "gart"}); err == nil {
		t.Fatal("two stores accepted")
	}
	// grape-gpu needs the array trait, which GART does not provide.
	if _, err := Build([]string{"grape-gpu", "gart"}); err == nil {
		t.Fatal("trait mismatch accepted")
	}
	if _, err := Build([]string{"grape-gpu", "vineyard"}); err != nil {
		t.Fatalf("valid gpu plan rejected: %v", err)
	}
}

// TestStoreTraitsMatchImplementations keeps the registry's trait table in
// sync with what the backends actually implement.
func TestStoreTraitsMatchImplementations(t *testing.T) {
	b := dataset.SNB(dataset.SNBOptions{Persons: 30, Seed: 1})
	vy, err := vineyard.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	gs := gart.NewStore(dataset.SNBSchema(), 0)
	if err := gs.LoadBatch(b); err != nil {
		t.Fatal(err)
	}
	check := func(name string, g grin.Graph) {
		for _, tr := range storeTraits[name] {
			if tr == grin.TraitVersioned {
				// Versioning lives on the store handle, not on snapshots.
				if _, ok := interface{}(gs).(grin.Versioned); !ok {
					t.Errorf("registry claims %s is versioned but the store is not", name)
				}
				continue
			}
			if !grin.Has(g, tr) {
				t.Errorf("registry claims %s has %v but it does not", name, tr)
			}
		}
	}
	check("vineyard", vy)
	check("gart", gs.Latest())
}
