// Fraud detection (§8, Exp-5): the OLTP deployment — GART dynamic storage
// ingests a stream of orders while HiActor serves the mandatory co-purchase
// check as a parameterized stored procedure on consistent MVCC snapshots.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/query/cypher"
	"repro/internal/query/hiactor"
	"repro/internal/storage/gart"
)

func main() {
	opt := dataset.FraudOptions{Accounts: 1000, Items: 200, Seeds: 10, Seed: 7}
	store := gart.NewStore(dataset.FraudSchema(), 0)
	if err := store.LoadBatch(dataset.FraudBase(opt)); err != nil {
		log.Fatal(err)
	}

	// The detection query from §8: direct and friend-of co-purchasing with
	// known fraud seeds (accounts with id < 10), weighted and thresholded.
	detect, err := cypher.Parse(`MATCH (v:Account)-[:BUY]->(i:Item)<-[:BUY]-(s:Account)
WHERE id(v) = $acct AND id(s) < 10
WITH v, COUNT(s) AS cnt1
MATCH (v)-[:KNOWS]->(f:Account)-[:BUY]->(i2:Item)<-[:BUY]-(s2:Account)
WHERE id(s2) < 10
WITH v, cnt1, COUNT(s2) AS cnt2
WHERE cnt1 * 3 + cnt2 > 10
RETURN id(v)`, store.Schema())
	if err != nil {
		log.Fatal(err)
	}
	engine := hiactor.NewEngine(func() grin.Graph { return store.Latest() }, hiactor.Options{Shards: 2})
	defer engine.Close()
	if err := engine.Install("detect", detect); err != nil {
		log.Fatal(err)
	}

	alerts := 0
	for _, order := range dataset.FraudStream(opt, 300) {
		// Ingest the order into the dynamic store...
		if err := store.AddEdge(dataset.FraudBuy, order.Account, order.Item, graph.IntValue(order.Date)); err != nil {
			log.Fatal(err)
		}
		store.Commit()
		// ...then run the mandatory check before accepting it.
		rows, err := engine.Call(context.Background(), "detect", map[string]graph.Value{"acct": graph.IntValue(order.Account)})
		if err != nil {
			log.Fatal(err)
		}
		if len(rows) > 0 {
			alerts++
		}
	}
	fmt.Printf("processed 300 orders, %d flagged as potentially fraudulent\n", alerts)
}
