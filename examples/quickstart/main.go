// Quickstart: load a social-network graph into the in-memory store, run a
// Cypher query on the Gaia engine, a built-in analytic on GRAPE, and one GNN
// training batch — the three workload families of the stack in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/analytics/algorithms"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/learning/gnn"
	"repro/internal/learning/sampler"
	"repro/internal/query/cypher"
	"repro/internal/query/gaia"
	"repro/internal/storage/vineyard"
)

func main() {
	// 1. Generate and load a graph (Vineyard: immutable in-memory store).
	batch := dataset.SNB(dataset.SNBOptions{Persons: 300, Seed: 1})
	store, err := vineyard.Load(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d vertices, %d edges\n", store.NumVertices(), store.NumEdges())

	// 2. Interactive query: top tags by post count, in Cypher on Gaia.
	plan, err := cypher.Parse(`MATCH (m:Post)-[:HAS_TAG]->(t:Tag)
WITH t, COUNT(m) AS posts
RETURN t.name, posts
ORDER BY posts DESC LIMIT 5`, store.Schema())
	if err != nil {
		log.Fatal(err)
	}
	engine := gaia.NewEngine(store, gaia.Options{})
	rows, _, err := engine.Submit(context.Background(), plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top tags:")
	for _, r := range rows {
		fmt.Printf("  %-10s %d posts\n", r[0].Str(), r[1].Int())
	}

	// 3. Analytics: PageRank through the same GRIN view on GRAPE.
	ranks, err := algorithms.PageRank(store, algorithms.PageRankOptions{Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	best := 0
	for v := range ranks {
		if ranks[v] > ranks[best] {
			best = v
		}
	}
	fmt.Printf("highest PageRank: vertex %d (%.5f)\n", best, ranks[best])

	// 4. Learning: sample a mini-batch and take one GraphSAGE step.
	feats := dataset.Features(store.NumVertices(), 16, 4, 2)
	s := sampler.New(store, feats.Features, feats.Labels, sampler.Options{Fanouts: []int{10, 5}})
	model := gnn.NewSAGE(16, 16, 4, 2, 3)
	seeds := make([]graph.VID, 64)
	for i := range seeds {
		seeds[i] = graph.VID(i)
	}
	mb := s.Sample(seeds, rand.New(rand.NewSource(4)))
	loss := model.TrainStep(mb)
	fmt.Printf("one GNN training step: loss %.4f\n", loss)
}
