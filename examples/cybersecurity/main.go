// Cybersecurity monitoring (§8, Exp-8): the Trojan-detection check is a
// two-hop Gremlin traversal; the same question as SQL needs two self-joins
// of the whole edge table. This example runs both and prints the gap.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/grin"
	"repro/internal/query/gremlin"
	"repro/internal/query/hiactor"
	"repro/internal/relational"
	"repro/internal/storage/vineyard"
)

func main() {
	batch := dataset.FraudBase(dataset.FraudOptions{Accounts: 2000, Items: 400, Seeds: 10, Seed: 21})
	store, err := vineyard.Load(batch)
	if err != nil {
		log.Fatal(err)
	}

	// Graph-native: two-hop traversal from one account.
	plan, err := gremlin.Parse(
		`g.V().hasLabel('Account').has('id', 42).out('KNOWS').out('KNOWS').dedup().count()`,
		store.Schema())
	if err != nil {
		log.Fatal(err)
	}
	engine := hiactor.NewEngine(func() grin.Graph { return store }, hiactor.Options{Shards: 1})
	defer engine.Close()
	if err := engine.Install("twohop", plan); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rows, err := engine.Call(context.Background(), "twohop", nil)
	if err != nil {
		log.Fatal(err)
	}
	dGraph := time.Since(start)
	fmt.Printf("Gremlin 2-hop: %v reachable accounts in %v\n", rows[0][0], dGraph)

	// SQL baseline: filter + self-join over the knows table.
	knows := relational.NewTable("knows", "src", "dst")
	for _, e := range batch.Edges {
		if e.Label == dataset.FraudKnows {
			_ = knows.Append(graph.IntValue(e.Src), graph.IntValue(e.Dst))
		}
	}
	start = time.Now()
	first := knows.Filter(func(r []graph.Value) bool { return r[0].Int() == 42 })
	joined, err := first.HashJoin("dst", knows, "src")
	if err != nil {
		log.Fatal(err)
	}
	distinct := joined.Distinct()
	dSQL := time.Since(start)
	fmt.Printf("SQL joins:     %d rows in %v\n", distinct.NumRows(), dSQL)
	fmt.Printf("traversal avoids the joins: %.0fx faster\n", float64(dSQL)/float64(dGraph))
}
