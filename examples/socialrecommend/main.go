// Social relation prediction (§8, Exp-7): train the NCN link predictor with
// the decoupled learning stack and rank held-out friendships against random
// non-edges.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/learning/gnn"
)

func main() {
	// Community-structured social graph: links are predictable from common
	// neighbors.
	full := dataset.Community("social", 1000, 10, 10, 0.05, 11)
	train, posU, posV, negU, negV := dataset.TrainTestEdges(full, 0.1, 12)
	g, err := train.ToCSR(false)
	if err != nil {
		log.Fatal(err)
	}

	model := gnn.NewNCN(g, 16, 13)
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 10000; iter++ {
		if iter%2 == 0 {
			i := rng.Intn(train.NumEdges())
			model.TrainStep(train.Src[i], train.Dst[i], 1)
		} else {
			model.TrainStep(graph.VID(rng.Intn(g.NumVertices())), graph.VID(rng.Intn(g.NumVertices())), 0)
		}
	}
	auc := model.AUCApprox(posU[:50], posV[:50], negU[:50], negV[:50])
	fmt.Printf("NCN link prediction AUC on held-out friendships: %.3f\n", auc)
	u, v := posU[0], posV[0]
	fmt.Printf("example: score(%d, %d) = %.3f (true friendship)\n", u, v, model.Score(u, v))
}
