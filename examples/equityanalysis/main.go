// Equity analysis (§8, Exp-6): find each company's ultimate controller by
// propagating ownership shares down the shareholding graph on GRAPE —
// the analytics deployment over Vineyard.
package main

import (
	"fmt"
	"log"

	"repro/internal/analytics/algorithms"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/storage/vineyard"
)

func main() {
	batch := dataset.Equity(dataset.EquityOptions{Persons: 100, Companies: 800, Seed: 5})
	store, err := vineyard.Load(batch)
	if err != nil {
		log.Fatal(err)
	}
	personLo, personHi, _ := store.LabelRange(dataset.EquityPerson)

	res, err := algorithms.Equity(store, personLo, personHi, algorithms.EquityOptions{Threshold: 0.51})
	if err != nil {
		log.Fatal(err)
	}

	companyLo, companyHi, _ := store.LabelRange(dataset.EquityCompany)
	controlled := 0
	var sample []string
	for c := companyLo; c < companyHi; c++ {
		if res.Controller[c] == graph.NilVID {
			continue
		}
		controlled++
		if len(sample) < 5 {
			name, _ := store.VertexProp(c, 0)
			holder, _ := store.VertexProp(res.Controller[c], 0)
			sample = append(sample, fmt.Sprintf("  %s is controlled by %s (%.1f%%)",
				name.Str(), holder.Str(), res.Share[c]*100))
		}
	}
	fmt.Printf("%d of %d companies have an ultimate controller (>51%%)\n",
		controlled, int(companyHi-companyLo))
	for _, s := range sample {
		fmt.Println(s)
	}
}
