// Top-level benchmarks: one per table and figure of the paper's evaluation
// (§9). Each benchmark runs the corresponding experiment from internal/bench;
// `go test -bench=. -benchmem` regenerates every result, and cmd/flexbench
// prints the paper-style tables.
package repro

import (
	"flag"
	"os"
	"testing"

	"repro/internal/bench"
)

// TestMain maps -short onto bench quick mode, so
// `go test -short -bench . -run xxx ./` regenerates every table from
// scaled-down workloads in seconds.
func TestMain(m *testing.M) {
	flag.Parse()
	if testing.Short() {
		bench.SetQuick(true)
	}
	os.Exit(m.Run())
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := bench.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig7a — GRIN over Vineyard/GART/GraphAr (Exp-1a).
func BenchmarkFig7a(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFig7b — GRIN overhead vs direct coupling (Exp-1b).
func BenchmarkFig7b(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkFig7c — GART scan throughput vs CSR/LiveGraph (Exp-1c).
func BenchmarkFig7c(b *testing.B) { runExperiment(b, "fig7c") }

// BenchmarkFig7d — GraphAr loading speedup vs CSV (Exp-1d).
func BenchmarkFig7d(b *testing.B) { runExperiment(b, "fig7d") }

// BenchmarkFig7e — RBO/CBO query optimization gains (Exp-2a).
func BenchmarkFig7e(b *testing.B) { runExperiment(b, "fig7e") }

// BenchmarkFig7f — SNB Interactive on HiActor vs baseline (Exp-2b).
func BenchmarkFig7f(b *testing.B) { runExperiment(b, "fig7f") }

// BenchmarkFig7g — SNB BI on Gaia vs baseline (Exp-2c).
func BenchmarkFig7g(b *testing.B) { runExperiment(b, "fig7g") }

// BenchmarkFig7h — PageRank on CPUs vs PowerGraph/Gemini (Exp-3a).
func BenchmarkFig7h(b *testing.B) { runExperiment(b, "fig7h") }

// BenchmarkFig7i — BFS on CPUs vs PowerGraph/Gemini (Exp-3b).
func BenchmarkFig7i(b *testing.B) { runExperiment(b, "fig7i") }

// BenchmarkFig7j — PageRank on simulated GPUs vs Groute/Gunrock (Exp-3c).
func BenchmarkFig7j(b *testing.B) { runExperiment(b, "fig7j") }

// BenchmarkFig7k — BFS on simulated GPUs vs Groute/Gunrock (Exp-3d).
func BenchmarkFig7k(b *testing.B) { runExperiment(b, "fig7k") }

// BenchmarkFig7l — GraphSAGE scale-up (Exp-4a).
func BenchmarkFig7l(b *testing.B) { runExperiment(b, "fig7l") }

// BenchmarkFig7m — GraphSAGE scale-out (Exp-4b).
func BenchmarkFig7m(b *testing.B) { runExperiment(b, "fig7m") }

// BenchmarkTable2 — real-time fraud detection throughput (Exp-5).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkExp6 — equity analysis vs SQL baseline.
func BenchmarkExp6(b *testing.B) { runExperiment(b, "exp6") }

// BenchmarkExp7 — NCN social relation prediction.
func BenchmarkExp7(b *testing.B) { runExperiment(b, "exp7") }

// BenchmarkExp8 — cybersecurity 2-hop traversal vs SQL joins.
func BenchmarkExp8(b *testing.B) { runExperiment(b, "exp8") }

// BenchmarkAblationMsgAggregation — GRAPE message aggregation ablation.
func BenchmarkAblationMsgAggregation(b *testing.B) { runExperiment(b, "ablation-msg") }

// BenchmarkAblationGARTSegment — GART segment size sweep.
func BenchmarkAblationGARTSegment(b *testing.B) { runExperiment(b, "ablation-gart") }

// BenchmarkAblationPipeline — coupled vs decoupled training pipelines.
func BenchmarkAblationPipeline(b *testing.B) { runExperiment(b, "ablation-pipeline") }
