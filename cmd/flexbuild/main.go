// Command flexbuild validates a component selection and prints the resulting
// deployment plan — the utility tool of §3 that lets users assemble a
// tailored graph computing stack from LEGO-like components.
//
// Usage:
//
//	flexbuild -list
//	flexbuild -preset bi
//	flexbuild cypher gaia vineyard
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	list := flag.Bool("list", false, "list available components and presets")
	preset := flag.String("preset", "", "use a named preset (analytics, bi, oltp, learning)")
	flag.Parse()

	if *list {
		fmt.Println("components:")
		for _, c := range core.Registry {
			fmt.Printf("  %-14s %-12s %s\n", c.Name, c.Layer, c.Doc)
		}
		fmt.Println("presets:")
		for name, sel := range core.Presets {
			fmt.Printf("  %-14s %v\n", name, sel)
		}
		return
	}
	selection := flag.Args()
	if *preset != "" {
		sel, ok := core.Presets[*preset]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
			os.Exit(1)
		}
		selection = sel
	}
	if len(selection) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flexbuild [-list] [-preset name] [component...]")
		os.Exit(2)
	}
	plan, err := core.Build(selection)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(plan.Manifest())
}
