// Command flexbench regenerates the paper's evaluation tables and figures
// (§9). Run with no arguments for the full suite, or name experiment IDs.
//
// Usage:
//
//	flexbench            # all experiments
//	flexbench fig7c exp8
//	flexbench -quick     # scaled-down workloads (seconds, not minutes)
//	flexbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	quickFlag := flag.Bool("quick", false, "run scaled-down workloads (same code paths, smaller data)")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return
	}
	bench.SetQuick(*quickFlag)
	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.IDs()
	}
	fmt.Printf("flexbench: GOMAXPROCS=%d (scaling experiments need >1 CPU to separate)\n\n", runtime.GOMAXPROCS(0))
	for _, id := range ids {
		tab, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tab)
	}
}
