// Command flexbench regenerates the paper's evaluation tables and figures
// (§9). Run with no arguments for the full suite, or name experiment IDs.
//
// Usage:
//
//	flexbench            # all experiments
//	flexbench fig7c exp8
//	flexbench -quick     # scaled-down workloads (seconds, not minutes)
//	flexbench -json BENCH_query.json fig7e exp8    # also dump tables as JSON
//	flexbench -json fresh.json -delta BENCH_query.json fig7e   # warn on >10% regressions
//	flexbench -timeout 30s exp2  # bound each query execution inside experiments
//	flexbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

const usageLine = "usage: flexbench [-quick] [-json file] [-delta baseline] [-timeout d] [-list] [experiment ...]"

// validateArgs rejects unknown experiment IDs and bad flag values before any
// experiment runs: a typo in the last argument must not surface after minutes
// of benchmarking. Kept apart from main so the rules are unit-testable.
func validateArgs(ids, known []string, timeout time.Duration) string {
	if timeout < 0 {
		return fmt.Sprintf("-timeout %v is negative (0 means no deadline)", timeout)
	}
	knownSet := map[string]bool{}
	for _, id := range known {
		knownSet[id] = true
	}
	for _, id := range ids {
		if !knownSet[id] {
			return fmt.Sprintf("unknown experiment %q (run `flexbench -list` for the available IDs)", id)
		}
	}
	return ""
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	quickFlag := flag.Bool("quick", false, "run scaled-down workloads (same code paths, smaller data)")
	jsonPath := flag.String("json", "", "write the selected experiments' tables to this file as JSON")
	deltaPath := flag.String("delta", "", "diff duration cells against this baseline JSON, warning above 10% regression")
	timeout := flag.Duration("timeout", 0, "deadline for each query execution inside experiments (0: none)")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return
	}
	bench.SetQuick(*quickFlag)
	bench.SetQueryTimeout(*timeout)
	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.IDs()
	}
	if msg := validateArgs(ids, bench.IDs(), *timeout); msg != "" {
		fmt.Fprintln(os.Stderr, "flexbench: "+msg)
		fmt.Fprintln(os.Stderr, usageLine)
		os.Exit(2)
	}
	fmt.Printf("flexbench: GOMAXPROCS=%d (scaling experiments need >1 CPU to separate)\n\n", runtime.GOMAXPROCS(0))
	var tables []*bench.Table
	for _, id := range ids {
		tab, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tables = append(tables, tab)
		fmt.Println(tab)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(tables))
	}
	if *deltaPath != "" {
		benchDelta(*deltaPath, tables, os.Stdout)
	}
}
