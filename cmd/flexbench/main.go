// Command flexbench regenerates the paper's evaluation tables and figures
// (§9). Run with no arguments for the full suite, or name experiment IDs.
//
// Usage:
//
//	flexbench            # all experiments
//	flexbench fig7c exp8
//	flexbench -quick     # scaled-down workloads (seconds, not minutes)
//	flexbench -json BENCH_query.json fig7e fig7f   # also dump tables as JSON
//	flexbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	quickFlag := flag.Bool("quick", false, "run scaled-down workloads (same code paths, smaller data)")
	jsonPath := flag.String("json", "", "write the selected experiments' tables to this file as JSON")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return
	}
	bench.SetQuick(*quickFlag)
	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.IDs()
	}
	// Validate every requested ID before running any experiment: a typo in
	// the last argument must not surface after minutes of benchmarking.
	known := map[string]bool{}
	for _, id := range bench.IDs() {
		known[id] = true
	}
	for _, id := range ids {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "flexbench: unknown experiment %q (run `flexbench -list` for the available IDs)\n", id)
			fmt.Fprintln(os.Stderr, "usage: flexbench [-quick] [-json file] [-list] [experiment ...]")
			os.Exit(2)
		}
	}
	fmt.Printf("flexbench: GOMAXPROCS=%d (scaling experiments need >1 CPU to separate)\n\n", runtime.GOMAXPROCS(0))
	var tables []*bench.Table
	for _, id := range ids {
		tab, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		tables = append(tables, tab)
		fmt.Println(tab)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(tables))
	}
}
