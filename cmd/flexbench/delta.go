package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

// deltaThreshold is the relative ns/op regression above which a tracked
// benchmark cell earns a warning.
const deltaThreshold = 0.10

// benchDelta diffs the duration-valued cells of freshly produced tables
// against a committed baseline JSON and emits one warning line per cell
// regressing more than deltaThreshold. Warnings use the GitHub workflow
// `::warning::` syntax so they surface as annotations; the delta never fails
// the build — quick-mode timings on shared runners are indicative, not
// binding. Returns the number of regressions found.
func benchDelta(baselinePath string, fresh []*bench.Table, out *os.File) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(out, "::warning::bench-delta: baseline %s unreadable: %v\n", baselinePath, err)
		return 0
	}
	var baseline []*bench.Table
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(out, "::warning::bench-delta: baseline %s: %v\n", baselinePath, err)
		return 0
	}
	baseByID := map[string]*bench.Table{}
	for _, t := range baseline {
		baseByID[t.ID] = t
	}
	regressions := 0
	for _, ft := range fresh {
		bt, ok := baseByID[ft.ID]
		if !ok {
			continue // new experiment: nothing to compare yet
		}
		baseRows := map[string][]string{}
		for _, r := range bt.Rows {
			if len(r) > 0 {
				baseRows[r[0]] = r
			}
		}
		for _, fr := range ft.Rows {
			if len(fr) == 0 {
				continue
			}
			br, ok := baseRows[fr[0]]
			if !ok {
				continue
			}
			for c := 1; c < len(fr) && c < len(br); c++ {
				fd, fok := parseCellDuration(fr[c])
				bd, bok := parseCellDuration(br[c])
				if !fok || !bok || bd <= 0 {
					continue
				}
				if ratio := float64(fd)/float64(bd) - 1; ratio > deltaThreshold {
					col := fmt.Sprintf("col %d", c)
					if c < len(ft.Header) {
						col = ft.Header[c]
					}
					fmt.Fprintf(out, "::warning::bench-delta: %s / %s / %s: %v vs baseline %v (+%.0f%%)\n",
						ft.ID, fr[0], col, fd, bd, ratio*100)
					regressions++
				}
			}
		}
	}
	if regressions == 0 {
		fmt.Fprintf(out, "bench-delta: no cell regressed more than %.0f%% against %s\n", deltaThreshold*100, baselinePath)
	}
	return regressions
}

// parseCellDuration recognizes the harness's duration cells ("1.80ms",
// "250µs", "1.2s"); table cells holding counts, ratios, or labels are
// skipped.
func parseCellDuration(cell string) (time.Duration, bool) {
	d, err := time.ParseDuration(cell)
	if err != nil || d < 0 {
		return 0, false
	}
	return d, true
}
