package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// TestValidateArgs pins the upfront validation: unknown experiment IDs and a
// negative -timeout fail with a usage message before any experiment runs.
func TestValidateArgs(t *testing.T) {
	known := []string{"exp2", "fig7c", "fig7e"}
	cases := []struct {
		name    string
		ids     []string
		timeout time.Duration
		want    string // substring of the usage message; "" means valid
	}{
		{name: "all known", ids: []string{"fig7c", "exp2"}},
		{name: "empty runs everything", ids: nil},
		{name: "with timeout", ids: []string{"exp2"}, timeout: 30 * time.Second},
		{name: "typo in last id", ids: []string{"exp2", "fig7x"}, want: `unknown experiment "fig7x"`},
		{name: "negative timeout", ids: []string{"exp2"}, timeout: -time.Second, want: "-timeout -1s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := validateArgs(tc.ids, known, tc.timeout)
			if tc.want == "" {
				if got != "" {
					t.Fatalf("validateArgs = %q, want valid", got)
				}
				return
			}
			if !strings.Contains(got, tc.want) {
				t.Fatalf("validateArgs = %q, want it to mention %q", got, tc.want)
			}
		})
	}
}

// TestUsageLineMentionsEveryFlag keeps the usage message in sync with the
// flags main registers.
func TestUsageLineMentionsEveryFlag(t *testing.T) {
	for _, f := range []string{"-quick", "-json", "-delta", "-timeout", "-list"} {
		if !strings.Contains(usageLine, f) {
			t.Errorf("usage line does not mention %s: %q", f, usageLine)
		}
	}
}

// TestBenchDelta pins the regression math: only duration cells compare, only
// >10% slowdowns warn, and new experiments or rows diff silently.
func TestBenchDelta(t *testing.T) {
	dir := t.TempDir()
	baseline := []*bench.Table{{
		ID:     "micro-vector",
		Header: []string{"path", "time/pass", "speedup"},
		Rows: [][]string{
			{"FILTER boxed materializing", "2.00ms", "1.0x"},
			{"FILTER selection-vector kernel", "400µs", "5.0x"},
		},
	}}
	data, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := []*bench.Table{
		{
			ID:     "micro-vector",
			Header: []string{"path", "time/pass", "speedup"},
			Rows: [][]string{
				{"FILTER boxed materializing", "2.10ms", "1.0x"},    // +5%: under threshold
				{"FILTER selection-vector kernel", "600µs", "3.5x"}, // +50%: warns
				{"predicate typed int kernel", "100µs", "20x"},      // new row: skipped
			},
		},
		{ID: "brand-new", Rows: [][]string{{"row", "1ms"}}}, // no baseline: skipped
	}
	sink, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if got := benchDelta(path, fresh, sink); got != 1 {
		t.Fatalf("benchDelta found %d regressions, want 1", got)
	}
	out, err := os.ReadFile(sink.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "::warning::") || !strings.Contains(string(out), "selection-vector") {
		t.Fatalf("warning line missing or wrong: %q", out)
	}
	// A missing baseline warns but reports zero regressions.
	if got := benchDelta(filepath.Join(dir, "absent.json"), fresh, sink); got != 0 {
		t.Fatalf("missing baseline: %d regressions, want 0", got)
	}
}

// TestBenchDeltaIgnoresCounters pins that the observability counters embedded
// in -json output are structurally invisible to -delta: a fresh run whose
// duration cells match the baseline never warns, no matter how far the
// stage-stats counters drifted (and a baseline written before the Counters
// field existed still parses).
func TestBenchDeltaIgnoresCounters(t *testing.T) {
	dir := t.TempDir()
	baseline := []*bench.Table{{
		ID:       "fig7g",
		Header:   []string{"query", "Flex", "baseline", "speedup"},
		Rows:     [][]string{{"BI1", "1.00ms", "2.00ms", "2.0x"}},
		Counters: map[string]float64{"rows": 100, "batches": 4, "kernel_path_ratio": 1},
	}}
	data, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := []*bench.Table{{
		ID:     "fig7g",
		Header: []string{"query", "Flex", "baseline", "speedup"},
		Rows:   [][]string{{"BI1", "1.00ms", "2.00ms", "2.0x"}},
		// Wildly different counters: more rows, different ratio. Still zero
		// regressions — counters are not duration cells.
		Counters: map[string]float64{"rows": 9999, "batches": 128, "kernel_path_ratio": 0.1},
	}}
	sink, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if got := benchDelta(path, fresh, sink); got != 0 {
		t.Fatalf("benchDelta found %d regressions from counter drift, want 0", got)
	}
}
