package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateArgs pins the upfront validation: unknown experiment IDs and a
// negative -timeout fail with a usage message before any experiment runs.
func TestValidateArgs(t *testing.T) {
	known := []string{"exp2", "fig7c", "fig7e"}
	cases := []struct {
		name    string
		ids     []string
		timeout time.Duration
		want    string // substring of the usage message; "" means valid
	}{
		{name: "all known", ids: []string{"fig7c", "exp2"}},
		{name: "empty runs everything", ids: nil},
		{name: "with timeout", ids: []string{"exp2"}, timeout: 30 * time.Second},
		{name: "typo in last id", ids: []string{"exp2", "fig7x"}, want: `unknown experiment "fig7x"`},
		{name: "negative timeout", ids: []string{"exp2"}, timeout: -time.Second, want: "-timeout -1s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := validateArgs(tc.ids, known, tc.timeout)
			if tc.want == "" {
				if got != "" {
					t.Fatalf("validateArgs = %q, want valid", got)
				}
				return
			}
			if !strings.Contains(got, tc.want) {
				t.Fatalf("validateArgs = %q, want it to mention %q", got, tc.want)
			}
		})
	}
}

// TestUsageLineMentionsEveryFlag keeps the usage message in sync with the
// flags main registers.
func TestUsageLineMentionsEveryFlag(t *testing.T) {
	for _, f := range []string{"-quick", "-json", "-timeout", "-list"} {
		if !strings.Contains(usageLine, f) {
			t.Errorf("usage line does not mention %s: %q", f, usageLine)
		}
	}
}
