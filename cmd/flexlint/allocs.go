// flexlint -allocs: the compiler-backed allocation budget gate. The real
// work lives in internal/lint/allocgate; this wrapper picks the baseline
// path, handles -update, and formats the violations.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/lint/allocgate"
)

// runAllocs diffs (or with update, rewrites) the hot-path allocation
// baseline, returning the process exit code.
func runAllocs(baselinePath string, update, asJSON bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint -allocs:", err)
		return 2
	}
	current, err := allocgate.Collect(cwd, allocgate.HotPackages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint -allocs:", err)
		return 2
	}
	if update {
		if err := allocgate.Save(baselinePath, current); err != nil {
			fmt.Fprintln(os.Stderr, "flexlint -allocs:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "flexlint -allocs: baseline %s rewritten (%d package(s))\n",
			baselinePath, len(current))
		return 0
	}
	baseline, err := allocgate.Load(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint -allocs:", err)
		return 2
	}
	violations := allocgate.Diff(baseline, current)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(violations) //nolint:errcheck // stdout
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
	} else {
		for _, v := range violations {
			fmt.Println(v)
		}
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "flexlint -allocs: %d new hot-path allocation(s) over baseline %s\n",
			len(violations), baselinePath)
		return 1
	}
	return 0
}
