// Command flexlint is the multichecker for the repository's architectural
// invariants: trait-only storage access (grinboundary), reproducible
// execution (determinism), typed-column discipline (valuebox, boxflow),
// safe concurrency and pooling (parallelsafety, lockflow), and an honest
// backend capability matrix (traitcomplete).
//
// Usage:
//
//	go run ./cmd/flexlint ./...
//	go run ./cmd/flexlint -only grinboundary,determinism ./internal/query/...
//	go run ./cmd/flexlint -json ./...
//	go run ./cmd/flexlint -debug=t ./...
//	go run ./cmd/flexlint -plans
//	go run ./cmd/flexlint -allocs
//	go run ./cmd/flexlint -allocs -update
//	go run ./cmd/flexlint -list
//
// Findings print as file:line:col: message (analyzer) and any finding makes
// the exit status 1, so CI can gate on a clean tree; -json additionally
// emits the findings as a JSON array on stdout (human lines move to
// stderr, where the GitHub problem matcher picks them up). Intentional
// findings are suppressed inline with
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above; the reason is mandatory and a
// suppression naming an unknown analyzer is itself a finding.
//
// Beyond the AST analyzers, two whole-program gates share the binary:
// -plans verifies the checked-in query corpus (lint/plans.json) with the
// planshape plan verifier and the backend capability matrix, and -allocs
// diffs the compiler's escape-analysis output for the hot-path packages
// against the allocation baseline (lint/allocs_baseline.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON on stdout (human lines go to stderr)")
	debug := flag.String("debug", "", "debug letters: t = per-analyzer wall time")
	plans := flag.Bool("plans", false, "verify the lint/plans.json query corpus and exit")
	allocs := flag.Bool("allocs", false, "diff hot-path escape analysis against lint/allocs_baseline.json and exit")
	update := flag.Bool("update", false, "with -allocs: rewrite the baseline instead of diffing")
	flag.Parse()

	switch {
	case *list:
		for _, a := range lint.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	case *plans:
		os.Exit(runPlans("lint/plans.json", *asJSON))
	case *allocs:
		os.Exit(runAllocs("lint/allocs_baseline.json", *update, *asJSON))
	}
	os.Exit(runLint(*only, flag.Args(), *asJSON, strings.Contains(*debug, "t")))
}

// jsonFinding is the machine-readable shape of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// emitFindings prints findings in the selected format: the human compiler
// format on stdout normally, or JSON on stdout with the human lines on
// stderr (so CI log matchers still see them) under -json.
func emitFindings(findings []analysis.Finding, asJSON bool) {
	if !asJSON {
		for _, f := range findings {
			fmt.Println(f)
		}
		return
	}
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		}
		fmt.Fprintln(os.Stderr, f)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // stdout
}

// runLint executes the analyzer suite and returns the process exit code.
func runLint(only string, patterns []string, asJSON, timed bool) int {
	analyzers := lint.All()
	if only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "flexlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}
	// With no explicit patterns, load only what the selected analyzers
	// declare they look at: a `-only grinboundary` run loads the query and
	// analytics trees, not the whole module. An analyzer without Targets
	// falls back to everything.
	if len(patterns) == 0 {
		seen := map[string]bool{}
		for _, a := range analyzers {
			if len(a.Targets) == 0 {
				patterns = []string{"./..."}
				seen = nil
				break
			}
			for _, t := range a.Targets {
				if !seen[t] {
					seen[t] = true
					patterns = append(patterns, t)
				}
			}
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		return 2
	}
	// Suppressions may target any analyzer in the suite, not just the ones
	// selected by -only: a partial run must not flag the others' escapes.
	known := make([]string, 0, len(lint.All()))
	for _, a := range lint.All() {
		known = append(known, a.Name)
	}
	findings, timings, err := analysis.RunKnownTimed(pkgs, analyzers, known)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		return 2
	}
	if timed {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "flexlint: timing %-16s %s\n", tm.Analyzer, tm.Elapsed)
		}
	}
	emitFindings(findings, asJSON)
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "flexlint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
