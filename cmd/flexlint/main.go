// Command flexlint is the multichecker for the repository's architectural
// invariants: trait-only storage access (grinboundary), reproducible
// execution (determinism), typed-column discipline (valuebox), safe
// concurrency and pooling (parallelsafety), and an honest backend
// capability matrix (traitcomplete).
//
// Usage:
//
//	go run ./cmd/flexlint ./...
//	go run ./cmd/flexlint -only grinboundary,determinism ./internal/query/...
//	go run ./cmd/flexlint -list
//
// Findings print as file:line:col: message (analyzer) and any finding makes
// the exit status 1, so CI can gate on a clean tree. Intentional findings
// are suppressed inline with
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above; the reason is mandatory and a
// suppression naming an unknown analyzer is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "flexlint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		os.Exit(2)
	}
	// Suppressions may target any analyzer in the suite, not just the ones
	// selected by -only: a partial run must not flag the others' escapes.
	known := make([]string, 0, len(lint.All()))
	for _, a := range lint.All() {
		known = append(known, a.Name)
	}
	findings, err := analysis.RunKnown(pkgs, analyzers, known)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "flexlint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
