// flexlint -plans: verify the checked-in query corpus. Each corpus entry is
// source text (cypher or gremlin) plus a schema name and the backends it is
// expected to run on. The runner drives the full front half of the stack —
// parse, planshape.Verify, optimize, Verify again — then cross-checks the
// verifier's predicted shape against what exec.Compile actually builds, and
// finally checks the plan's required traits against each listed backend's
// capability row. Backends that would degrade (skipped label filters,
// internal-ID fallback) are reported but do not fail the run.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/query/cypher"
	"repro/internal/query/exec"
	"repro/internal/query/gremlin"
	"repro/internal/query/ir"
	"repro/internal/query/optimizer"
	"repro/internal/query/planshape"
	"repro/internal/storage/vineyard"
)

type corpus struct {
	Description string       `json:"description"`
	Plans       []corpusPlan `json:"plans"`
}

type corpusPlan struct {
	Name     string   `json:"name"`
	Lang     string   `json:"lang"`
	Schema   string   `json:"schema"`
	Query    string   `json:"query"`
	Backends []string `json:"backends"`
}

// schemaEnv resolves a corpus schema name to the schema plus a small loaded
// graph for the optimizer's catalog (statistics only — no query runs).
func schemaEnv(name string) (*graph.Schema, *optimizer.Catalog, error) {
	var b *graph.Batch
	var s *graph.Schema
	switch name {
	case "snb":
		s = dataset.SNBSchema()
		b = dataset.SNB(dataset.SNBOptions{Persons: 40, Seed: 11})
	case "simple":
		s = graph.SimpleSchema(true)
		b = dataset.Datagen("corpus", 64, 4, 11).ToBatch()
	default:
		return nil, nil, fmt.Errorf("unknown schema %q", name)
	}
	st, err := vineyard.Load(b)
	if err != nil {
		return nil, nil, err
	}
	return s, optimizer.BuildCatalog(st), nil
}

// checkShape cross-checks the verifier's prediction against the compiler.
func checkShape(info *planshape.Info, p *ir.Plan) error {
	c, err := exec.Compile(p, exec.Options{})
	if err != nil {
		return fmt.Errorf("exec.Compile rejects a verified plan: %w", err)
	}
	if len(info.Stages) != len(c.Stages) {
		return fmt.Errorf("verifier predicts %d stages, compiler builds %d", len(info.Stages), len(c.Stages))
	}
	for i, st := range info.Stages {
		real := c.Stages[i]
		if st.Name != real.Name || st.InWidth != real.InWidth || st.OutWidth != real.OutWidth {
			return fmt.Errorf("stage %d: verifier %s %d->%d, compiler %s %d->%d",
				i, st.Name, st.InWidth, st.OutWidth, real.Name, real.InWidth, real.OutWidth)
		}
	}
	if len(info.Out) != len(c.Out) {
		return fmt.Errorf("verifier predicts output %v, compiler %v", info.Out, c.Out)
	}
	for i := range info.Out {
		if info.Out[i] != c.Out[i] {
			return fmt.Errorf("verifier predicts output %v, compiler %v", info.Out, c.Out)
		}
	}
	return nil
}

func verifyCorpusPlan(cp corpusPlan) (string, error) {
	schema, cat, err := schemaEnv(cp.Schema)
	if err != nil {
		return "", err
	}
	var logical *ir.Plan
	switch cp.Lang {
	case "cypher":
		logical, err = cypher.Parse(cp.Query, schema)
	case "gremlin":
		logical, err = gremlin.Parse(cp.Query, schema)
	default:
		err = fmt.Errorf("unknown language %q", cp.Lang)
	}
	if err != nil {
		return "", fmt.Errorf("parse: %w", err)
	}
	info, err := planshape.Verify(logical)
	if err != nil {
		return "", fmt.Errorf("logical plan: %w", err)
	}
	if err := checkShape(info, logical); err != nil {
		return "", fmt.Errorf("logical plan: %w", err)
	}
	physical, err := optimizer.Optimize(logical, cat, optimizer.All())
	if err != nil {
		return "", fmt.Errorf("optimize: %w", err)
	}
	pinfo, err := planshape.Verify(physical)
	if err != nil {
		return "", fmt.Errorf("physical plan: %w", err)
	}
	if err := checkShape(pinfo, physical); err != nil {
		return "", fmt.Errorf("physical plan: %w", err)
	}
	// The physical plan is what runs; its trait demands gate the backends.
	detail := fmt.Sprintf("%d stages, requires %v", len(pinfo.Stages), pinfo.Requires)
	for _, backend := range cp.Backends {
		if err := planshape.CheckBackend(pinfo, backend); err != nil {
			return "", fmt.Errorf("backend %s: %w", backend, err)
		}
		if deg := planshape.Degraded(pinfo, backend); len(deg) > 0 {
			detail += fmt.Sprintf("; %s degrades %v", backend, deg)
		}
	}
	return detail, nil
}

// runPlans verifies every corpus entry, returning the process exit code.
func runPlans(path string, asJSON bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint -plans:", err)
		return 2
	}
	var c corpus
	if err := json.Unmarshal(data, &c); err != nil {
		fmt.Fprintf(os.Stderr, "flexlint -plans: %s: %v\n", path, err)
		return 2
	}
	if len(c.Plans) == 0 {
		fmt.Fprintf(os.Stderr, "flexlint -plans: %s: empty corpus\n", path)
		return 2
	}
	type result struct {
		Name   string `json:"name"`
		Detail string `json:"detail,omitempty"`
		Error  string `json:"error,omitempty"`
	}
	var results []result
	failures := 0
	for _, cp := range c.Plans {
		detail, err := verifyCorpusPlan(cp)
		if err != nil {
			failures++
			results = append(results, result{Name: cp.Name, Error: err.Error()})
			fmt.Fprintf(os.Stderr, "flexlint -plans: %s: %v\n", cp.Name, err)
			continue
		}
		results = append(results, result{Name: cp.Name, Detail: detail})
		if !asJSON {
			fmt.Printf("plan %-24s ok: %s\n", cp.Name, detail)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(results) //nolint:errcheck // stdout
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "flexlint -plans: %d of %d corpus plan(s) failed\n", failures, len(c.Plans))
		return 1
	}
	return 0
}
