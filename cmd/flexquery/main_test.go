package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFlags pins the upfront flag validation: every bad value is
// rejected with a message naming the offending flag before any dataset work,
// and the documented defaults pass.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		store   string
		lang    string
		par     int
		batch   int
		persons int
		timeout time.Duration
		trace   string
		want    string // substring of the usage message; "" means valid
	}{
		{name: "defaults", store: "vineyard", lang: "cypher", persons: 200},
		{name: "gart gremlin tuned", store: "gart", lang: "gremlin", par: 8, batch: 512, persons: 50, timeout: time.Second},
		{name: "livegraph", store: "livegraph", lang: "cypher", persons: 10},
		{name: "trace to file", store: "vineyard", lang: "cypher", persons: 200, trace: "out.json"},
		{name: "bad store", store: "neo4j", lang: "cypher", persons: 200, want: `unknown store "neo4j"`},
		{name: "bad lang", store: "vineyard", lang: "sparql", persons: 200, want: `unknown language "sparql"`},
		{name: "negative par", store: "vineyard", lang: "cypher", par: -1, persons: 200, want: "-par -1"},
		{name: "negative batch", store: "vineyard", lang: "cypher", batch: -4, persons: 200, want: "-batch -4"},
		{name: "zero persons", store: "vineyard", lang: "cypher", persons: 0, want: "-persons 0"},
		{name: "negative timeout", store: "vineyard", lang: "cypher", persons: 200, timeout: -time.Second, want: "-timeout -1s"},
		// Observability flags combined with a bad store/language must be
		// rejected by this same pre-dataset gate: a typo'd backend plus
		// -trace or -explain cannot cost an SNB build before failing.
		{name: "trace with bad store", store: "neo4j", lang: "cypher", persons: 200, trace: "out.json", want: `unknown store "neo4j"`},
		{name: "trace with bad lang", store: "vineyard", lang: "sparql", persons: 200, trace: "out.json", want: `unknown language "sparql"`},
		{name: "trace to directory", store: "vineyard", lang: "cypher", persons: 200, trace: ".", want: `-trace "." is a directory`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := validateFlags(tc.store, tc.lang, tc.par, tc.batch, tc.persons, tc.timeout, tc.trace)
			if tc.want == "" {
				if got != "" {
					t.Fatalf("validateFlags = %q, want valid", got)
				}
				return
			}
			if !strings.Contains(got, tc.want) {
				t.Fatalf("validateFlags = %q, want it to mention %q", got, tc.want)
			}
		})
	}
}

// TestUsageLineMentionsEveryFlag keeps the usage message in sync with the
// flags main registers — a new knob must show up in the error users see.
func TestUsageLineMentionsEveryFlag(t *testing.T) {
	for _, f := range []string{"-persons", "-lang", "-store", "-par", "-batch", "-timeout", "-explain", "-trace"} {
		if !strings.Contains(usageLine, f) {
			t.Errorf("usage line does not mention %s: %q", f, usageLine)
		}
	}
}
