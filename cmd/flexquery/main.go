// Command flexquery loads a generated SNB graph and evaluates one Cypher or
// Gremlin query against it — the interactive entry point of the stack.
//
// Usage:
//
//	flexquery -persons 300 -lang cypher 'MATCH (p:Person)-[:KNOWS]->(f:Person) WHERE id(p) = 1 RETURN id(f)'
//	flexquery -lang gremlin "g.V().hasLabel('Person').count()"
//	flexquery -store gart -par 8 -batch 512 'MATCH (p:Person)-[:KNOWS]->(f:Person) RETURN f.firstName LIMIT 5'
//	flexquery -timeout 250ms 'MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN count(c)'
//
// -store selects the storage backend the Gaia engine reads through GRIN:
// vineyard (immutable CSR + columns, native batch traits), gart (MVCC
// snapshot), or livegraph (dynamic adjacency, topology only — label scans
// cover every vertex and property access fails, exercising the capability
// fallbacks). -par and -batch tune the engine's worker count and rows per
// batch, driving the batched scan/expand/gather paths at any morsel shape.
// -timeout puts a deadline on query execution (not the dataset build): an
// expired query fails with exec.ErrDeadlineExceeded, the lifecycle contract
// every engine honors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/grin"
	"repro/internal/query/cypher"
	"repro/internal/query/gaia"
	"repro/internal/query/gremlin"
	"repro/internal/query/ir"
	"repro/internal/storage/gart"
	"repro/internal/storage/livegraph"
	"repro/internal/storage/vineyard"
)

// validateFlags rejects bad flag combinations before any expensive work; the
// returned message feeds the usage error. Kept apart from main so the
// validation rules are unit-testable.
func validateFlags(store, lang string, par, batch, persons int, timeout time.Duration) string {
	switch store {
	case "vineyard", "gart", "livegraph":
	default:
		return fmt.Sprintf("unknown store %q (want vineyard, gart or livegraph)", store)
	}
	switch lang {
	case "cypher", "gremlin":
	default:
		return fmt.Sprintf("unknown language %q (want cypher or gremlin)", lang)
	}
	if par < 0 {
		return fmt.Sprintf("-par %d is negative (0 means GOMAXPROCS)", par)
	}
	if batch < 0 {
		return fmt.Sprintf("-batch %d is negative (0 means the engine default)", batch)
	}
	if persons <= 0 {
		return fmt.Sprintf("-persons %d must be positive", persons)
	}
	if timeout < 0 {
		return fmt.Sprintf("-timeout %v is negative (0 means no deadline)", timeout)
	}
	return ""
}

const usageLine = "usage: flexquery [-persons n] [-lang cypher|gremlin] [-store vineyard|gart|livegraph] [-par n] [-batch n] [-timeout d] [-explain] <query>"

func main() {
	persons := flag.Int("persons", 200, "SNB scale (persons)")
	lang := flag.String("lang", "cypher", "query language: cypher or gremlin")
	store := flag.String("store", "vineyard", "storage backend: vineyard, gart or livegraph")
	par := flag.Int("par", 0, "engine parallelism (0: GOMAXPROCS)")
	batch := flag.Int("batch", 0, "rows per batch (0: engine default)")
	timeout := flag.Duration("timeout", 0, "query execution deadline (0: none)")
	explain := flag.Bool("explain", false, "print the logical plan instead of executing")
	flag.Parse()
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "flexquery: "+msg)
		fmt.Fprintln(os.Stderr, usageLine)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		usage("expected exactly one query argument")
	}
	// Validate every flag before the dataset build: an unknown store or a
	// negative tuning knob must fail in milliseconds, not after generating
	// and loading an SNB graph.
	if msg := validateFlags(*store, *lang, *par, *batch, *persons, *timeout); msg != "" {
		usage(msg)
	}
	query := flag.Arg(0)

	b := dataset.SNB(dataset.SNBOptions{Persons: *persons, Seed: 1})
	var st grin.Graph
	var err error
	switch *store {
	case "vineyard":
		st, err = vineyard.Load(b)
	case "gart":
		gs := gart.NewStore(dataset.SNBSchema(), 0)
		if err = gs.LoadBatch(b); err == nil {
			st = gs.Latest()
		}
	case "livegraph":
		st, err = livegraph.LoadBatch(b)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	schema := dataset.SNBSchema()
	var plan *ir.Plan
	switch *lang {
	case "cypher":
		plan, err = cypher.Parse(query, schema)
	case "gremlin":
		plan, err = gremlin.Parse(query, schema)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *explain {
		fmt.Println(plan)
		return
	}
	// The deadline covers query execution only: the interactive contract is
	// "this query gets d of engine time", not "minus however long the
	// dataset build took".
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	eng := gaia.NewEngine(st, gaia.Options{Parallelism: *par, BatchSize: *batch})
	rows, out, err := eng.Submit(ctx, plan, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(strings.Join(out, "\t"))
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}
