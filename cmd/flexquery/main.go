// Command flexquery loads a generated SNB graph and evaluates one Cypher or
// Gremlin query against it — the interactive entry point of the stack.
//
// Usage:
//
//	flexquery -persons 300 -lang cypher 'MATCH (p:Person)-[:KNOWS]->(f:Person) WHERE id(p) = 1 RETURN id(f)'
//	flexquery -lang gremlin "g.V().hasLabel('Person').count()"
//	flexquery -store gart -par 8 -batch 512 'MATCH (p:Person)-[:KNOWS]->(f:Person) RETURN f.firstName LIMIT 5'
//	flexquery -timeout 250ms 'MATCH (a:Person)-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN count(c)'
//	flexquery -explain 'MATCH (p:Person)-[:KNOWS]->(f) RETURN id(f)'
//	flexquery -trace out.json 'MATCH (p:Person)-[:KNOWS]->(f) RETURN id(f)'
//
// -store selects the storage backend the Gaia engine reads through GRIN:
// vineyard (immutable CSR + columns, native batch traits), gart (MVCC
// snapshot), or livegraph (dynamic adjacency, topology only — label scans
// cover every vertex and property access fails, exercising the capability
// fallbacks). -par and -batch tune the engine's worker count and rows per
// batch, driving the batched scan/expand/gather paths at any morsel shape.
// -timeout puts a deadline on query execution (not the dataset build): an
// expired query fails with exec.ErrDeadlineExceeded, the lifecycle contract
// every engine honors.
//
// -explain is EXPLAIN ANALYZE: the query executes with per-stage runtime
// stats enabled and the optimized physical plan prints annotated with the
// observed counters (rows in/out, batches, kernel-vs-boxed filter steps,
// selection survivors, per-stage wall time) plus the per-site store trait
// call counts, instead of the result rows. -trace writes a Chrome
// trace-event JSON of the run (stage spans, morsel dispatches, lifecycle
// exits) to the given file — load it in chrome://tracing or Perfetto.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/grin"
	"repro/internal/query/cypher"
	"repro/internal/query/gaia"
	"repro/internal/query/gremlin"
	"repro/internal/query/ir"
	"repro/internal/query/obsv"
	"repro/internal/storage/gart"
	"repro/internal/storage/livegraph"
	"repro/internal/storage/meter"
	"repro/internal/storage/vineyard"
)

// validateFlags rejects bad flag combinations before any expensive work; the
// returned message feeds the usage error. Kept apart from main so the
// validation rules are unit-testable. The observability flags go through the
// same gate: `-explain` or `-trace` combined with an unknown store or
// language must fail here, before the SNB dataset is generated and loaded.
func validateFlags(store, lang string, par, batch, persons int, timeout time.Duration, tracePath string) string {
	switch store {
	case "vineyard", "gart", "livegraph":
	default:
		return fmt.Sprintf("unknown store %q (want vineyard, gart or livegraph)", store)
	}
	switch lang {
	case "cypher", "gremlin":
	default:
		return fmt.Sprintf("unknown language %q (want cypher or gremlin)", lang)
	}
	if par < 0 {
		return fmt.Sprintf("-par %d is negative (0 means GOMAXPROCS)", par)
	}
	if batch < 0 {
		return fmt.Sprintf("-batch %d is negative (0 means the engine default)", batch)
	}
	if persons <= 0 {
		return fmt.Sprintf("-persons %d must be positive", persons)
	}
	if timeout < 0 {
		return fmt.Sprintf("-timeout %v is negative (0 means no deadline)", timeout)
	}
	if tracePath != "" {
		if fi, err := os.Stat(tracePath); err == nil && fi.IsDir() {
			return fmt.Sprintf("-trace %q is a directory (want a file path)", tracePath)
		}
	}
	return ""
}

const usageLine = "usage: flexquery [-persons n] [-lang cypher|gremlin] [-store vineyard|gart|livegraph] [-par n] [-batch n] [-timeout d] [-explain] [-trace file.json] <query>"

func main() {
	persons := flag.Int("persons", 200, "SNB scale (persons)")
	lang := flag.String("lang", "cypher", "query language: cypher or gremlin")
	store := flag.String("store", "vineyard", "storage backend: vineyard, gart or livegraph")
	par := flag.Int("par", 0, "engine parallelism (0: GOMAXPROCS)")
	batch := flag.Int("batch", 0, "rows per batch (0: engine default)")
	timeout := flag.Duration("timeout", 0, "query execution deadline (0: none)")
	explain := flag.Bool("explain", false, "EXPLAIN ANALYZE: execute, then print the physical plan annotated with observed stats")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	flag.Parse()
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "flexquery: "+msg)
		fmt.Fprintln(os.Stderr, usageLine)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		usage("expected exactly one query argument")
	}
	// Validate every flag before the dataset build: an unknown store or a
	// negative tuning knob must fail in milliseconds, not after generating
	// and loading an SNB graph.
	if msg := validateFlags(*store, *lang, *par, *batch, *persons, *timeout, *tracePath); msg != "" {
		usage(msg)
	}
	query := flag.Arg(0)

	b := dataset.SNB(dataset.SNBOptions{Persons: *persons, Seed: 1})
	var st grin.Graph
	var err error
	switch *store {
	case "vineyard":
		st, err = vineyard.Load(b)
	case "gart":
		gs := gart.NewStore(dataset.SNBSchema(), 0)
		if err = gs.LoadBatch(b); err == nil {
			st = gs.Latest()
		}
	case "livegraph":
		st, err = livegraph.LoadBatch(b)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	schema := dataset.SNBSchema()
	var plan *ir.Plan
	switch *lang {
	case "cypher":
		plan, err = cypher.Parse(query, schema)
	case "gremlin":
		plan, err = gremlin.Parse(query, schema)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The observability collector is attached only when asked for: the plain
	// path runs with Env.Obs == nil, the disabled fast path.
	var obs *obsv.QueryStats
	if *explain || *tracePath != "" {
		obs = obsv.NewQueryStats()
		if *tracePath != "" {
			obs.Trace = obsv.NewTrace()
		}
		// Metering wraps the store so every GRIN trait call the engine makes
		// is counted per site, with native-vs-fallback visibility.
		mg := meter.Wrap(st, nil)
		obs.Store = mg.Stats()
		st = mg
	}

	// The deadline covers query execution only: the interactive contract is
	// "this query gets d of engine time", not "minus however long the
	// dataset build took".
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	eng := gaia.NewEngine(st, gaia.Options{Parallelism: *par, BatchSize: *batch})
	c, err := eng.Compile(plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rows, err := eng.RunCompiledObserved(ctx, c, nil, obs)
	if *tracePath != "" && obs != nil && obs.Trace != nil {
		// The trace is written even when the query failed: a trace of the
		// run up to the failure is exactly what the flag is for.
		if werr := writeTrace(*tracePath, obs.Trace); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *explain {
		// EXPLAIN ANALYZE output: the stage tree annotated with observed
		// counters, the per-site store call profile, and the cardinality.
		fmt.Print(c.Explain(obs).Render(true))
		ss := obs.Store.Snapshot()
		fmt.Print(obsv.RenderStore(&ss))
		fmt.Printf("(%d rows)\n", len(rows))
		return
	}
	fmt.Println(strings.Join(c.Out, "\t"))
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

// writeTrace dumps the run's trace buffer as Chrome trace-event JSON.
func writeTrace(path string, tr *obsv.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
