// Command flexquery loads a generated SNB graph and evaluates one Cypher or
// Gremlin query against it — the interactive entry point of the stack.
//
// Usage:
//
//	flexquery -persons 300 -lang cypher 'MATCH (p:Person)-[:KNOWS]->(f:Person) WHERE id(p) = 1 RETURN id(f)'
//	flexquery -lang gremlin "g.V().hasLabel('Person').count()"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/query/cypher"
	"repro/internal/query/gaia"
	"repro/internal/query/gremlin"
	"repro/internal/query/ir"
	"repro/internal/storage/vineyard"
)

func main() {
	persons := flag.Int("persons", 200, "SNB scale (persons)")
	lang := flag.String("lang", "cypher", "query language: cypher or gremlin")
	explain := flag.Bool("explain", false, "print the logical plan instead of executing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flexquery [-persons n] [-lang cypher|gremlin] [-explain] <query>")
		os.Exit(2)
	}
	query := flag.Arg(0)

	b := dataset.SNB(dataset.SNBOptions{Persons: *persons, Seed: 1})
	st, err := vineyard.Load(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var plan *ir.Plan
	switch *lang {
	case "cypher":
		plan, err = cypher.Parse(query, st.Schema())
	case "gremlin":
		plan, err = gremlin.Parse(query, st.Schema())
	default:
		err = fmt.Errorf("unknown language %q", *lang)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *explain {
		fmt.Println(plan)
		return
	}
	eng := gaia.NewEngine(st, gaia.Options{})
	rows, out, err := eng.Submit(plan, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(strings.Join(out, "\t"))
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}
