// Command flexquery loads a generated SNB graph and evaluates one Cypher or
// Gremlin query against it — the interactive entry point of the stack.
//
// Usage:
//
//	flexquery -persons 300 -lang cypher 'MATCH (p:Person)-[:KNOWS]->(f:Person) WHERE id(p) = 1 RETURN id(f)'
//	flexquery -lang gremlin "g.V().hasLabel('Person').count()"
//	flexquery -store gart -par 8 -batch 512 'MATCH (p:Person)-[:KNOWS]->(f:Person) RETURN f.firstName LIMIT 5'
//
// -store selects the storage backend the Gaia engine reads through GRIN:
// vineyard (immutable CSR + columns, native batch traits), gart (MVCC
// snapshot), or livegraph (dynamic adjacency, topology only — label scans
// cover every vertex and property access fails, exercising the capability
// fallbacks). -par and -batch tune the engine's worker count and rows per
// batch, driving the batched scan/expand/gather paths at any morsel shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/grin"
	"repro/internal/query/cypher"
	"repro/internal/query/gaia"
	"repro/internal/query/gremlin"
	"repro/internal/query/ir"
	"repro/internal/storage/gart"
	"repro/internal/storage/livegraph"
	"repro/internal/storage/vineyard"
)

func main() {
	persons := flag.Int("persons", 200, "SNB scale (persons)")
	lang := flag.String("lang", "cypher", "query language: cypher or gremlin")
	store := flag.String("store", "vineyard", "storage backend: vineyard, gart or livegraph")
	par := flag.Int("par", 0, "engine parallelism (0: GOMAXPROCS)")
	batch := flag.Int("batch", 0, "rows per batch (0: engine default)")
	explain := flag.Bool("explain", false, "print the logical plan instead of executing")
	flag.Parse()
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, "flexquery: "+msg)
		fmt.Fprintln(os.Stderr,
			"usage: flexquery [-persons n] [-lang cypher|gremlin] [-store vineyard|gart|livegraph] [-par n] [-batch n] [-explain] <query>")
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		usage("expected exactly one query argument")
	}
	// Validate every flag before the dataset build: an unknown store or a
	// negative tuning knob must fail in milliseconds, not after generating
	// and loading an SNB graph.
	switch *store {
	case "vineyard", "gart", "livegraph":
	default:
		usage(fmt.Sprintf("unknown store %q (want vineyard, gart or livegraph)", *store))
	}
	switch *lang {
	case "cypher", "gremlin":
	default:
		usage(fmt.Sprintf("unknown language %q (want cypher or gremlin)", *lang))
	}
	if *par < 0 {
		usage(fmt.Sprintf("-par %d is negative (0 means GOMAXPROCS)", *par))
	}
	if *batch < 0 {
		usage(fmt.Sprintf("-batch %d is negative (0 means the engine default)", *batch))
	}
	if *persons <= 0 {
		usage(fmt.Sprintf("-persons %d must be positive", *persons))
	}
	query := flag.Arg(0)

	b := dataset.SNB(dataset.SNBOptions{Persons: *persons, Seed: 1})
	var st grin.Graph
	var err error
	switch *store {
	case "vineyard":
		st, err = vineyard.Load(b)
	case "gart":
		gs := gart.NewStore(dataset.SNBSchema(), 0)
		if err = gs.LoadBatch(b); err == nil {
			st = gs.Latest()
		}
	case "livegraph":
		st, err = livegraph.LoadBatch(b)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	schema := dataset.SNBSchema()
	var plan *ir.Plan
	switch *lang {
	case "cypher":
		plan, err = cypher.Parse(query, schema)
	case "gremlin":
		plan, err = gremlin.Parse(query, schema)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *explain {
		fmt.Println(plan)
		return
	}
	eng := gaia.NewEngine(st, gaia.Options{Parallelism: *par, BatchSize: *batch})
	rows, out, err := eng.Submit(plan, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(strings.Join(out, "\t"))
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}
