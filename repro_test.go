package repro

import (
	"testing"

	"repro/internal/bench"
)

// TestExperimentsSmoke runs every registered experiment once in quick mode
// (scaled-down workloads, same code paths) and asserts it produces rows.
// This is what makes `go test ./` exercise the harness at all — the root
// package otherwise only has benchmarks — and, under -race, what sweeps the
// parallel runtime through every experiment.
func TestExperimentsSmoke(t *testing.T) {
	bench.SetQuick(true)
	defer bench.SetQuick(testing.Short())
	for _, id := range bench.IDs() {
		t.Run(id, func(t *testing.T) {
			tab, err := bench.Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("%s: row %v does not match header %v", id, row, tab.Header)
				}
			}
		})
	}
}
