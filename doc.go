// Package repro is a Go reproduction of "GraphScope Flex: LEGO-like Graph
// Computing Stack" (SIGMOD 2024): a modular graph computing stack with a
// unified storage interface (internal/grin), interchangeable storage
// backends, interactive query engines, a distributed-style analytics engine,
// and a decoupled GNN learning stack.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. bench_test.go regenerates every table and figure of the paper's
// evaluation.
package repro
