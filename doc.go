// Package repro is a Go reproduction of "GraphScope Flex: LEGO-like Graph
// Computing Stack" (SIGMOD 2024): a modular graph computing stack with a
// unified storage interface (internal/grin), interchangeable storage
// backends, interactive query engines, a distributed-style analytics engine,
// and a decoupled GNN learning stack.
//
// See README.md for the architecture overview, the command reference
// (cmd/flexbench, cmd/flexbuild, cmd/flexquery), the experiment index, the
// "Query execution runtime" section — the shared columnar batch runtime
// (typed column vectors, selection vectors, and fused filter passes;
// internal/query/exec) — and the "Robustness & fault injection" section:
// the query-lifecycle contract (deadlines, cancellation, budgets, panic
// isolation; internal/query/exec), the deterministic chaos storage wrapper
// (internal/storage/chaos) and the retry layer (internal/retry). The
// "Observability" section covers the measurement layer: per-stage runtime
// stats and trace export (internal/query/obsv), the store call meter
// (internal/storage/meter), and EXPLAIN ANALYZE (flexquery -explain).
// bench_test.go regenerates every table and figure of the paper's
// evaluation.
package repro
